// Client-side protocol speakers for the three spectord surfaces.
//
//  - IngestClient is an ingest::ReportSink over the wire: every datagram
//    the emulator supervisor emits becomes a Report frame, run completion
//    becomes a RunComplete upload (SpabEnvelope bytes), and the session
//    handshake + cumulative acks give it reconnect-and-resume semantics.
//    Thread-safe like the in-process sinks it substitutes for (emulator
//    workers share one collector), by serializing frame writes.
//  - DashboardClient subscribes to topics and folds snapshots + deltas
//    into a local mirror; the protocol's consistency contract says the
//    mirror equals the daemon's published state exactly once drained.
//  - AdminClient is a simple request/response wrapper over Admin frames.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sink.hpp"
#include "spectord/channel.hpp"
#include "spectord/protocol.hpp"

namespace libspector::spectord {

/// Shared client plumbing: a channel endpoint plus an incremental parser,
/// with blocking frame send/receive. Not thread-safe by itself; the
/// clients below add locking where their surface needs it.
class ClientChannel {
 public:
  explicit ClientChannel(ChannelEndpoint endpoint)
      : endpoint_(std::move(endpoint)) {}

  /// A destructed client closes its socket: even a crashed process gets
  /// a kernel FIN. Only a dead machine leaves a half-open peer, and this
  /// in-process simulation has no dead machines — so the daemon may treat
  /// an unclosed peer as a live attach.
  ~ClientChannel() { endpoint_.close(); }
  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  /// Blocking whole-frame write; false when the daemon closed the channel.
  bool send(FrameType type, std::span<const std::uint8_t> body);

  /// Non-blocking: drain whatever the daemon wrote, return the next frame.
  [[nodiscard]] std::optional<Frame> tryRead();

  /// Blocking read with a deadline; nullopt on timeout or EOF.
  [[nodiscard]] std::optional<Frame> read(std::chrono::milliseconds timeout);

  void close() { endpoint_.close(); }
  [[nodiscard]] bool peerClosed() const { return endpoint_.peerClosed(); }

 private:
  ChannelEndpoint endpoint_;
  FrameParser parser_;
  std::vector<std::uint8_t> scratch_;
};

/// Report-ingest client. Construction performs the Hello handshake and
/// blocks for the HelloAck (throws std::runtime_error if the daemon hangs
/// up instead). Pass the session token of a previous incarnation to
/// resume: ackedFrames()/ackedRuns() then report what the daemon already
/// has, so the caller re-sends only its unacked tail.
class IngestClient final : public ingest::ReportSink {
 public:
  IngestClient(ChannelEndpoint endpoint, std::uint64_t clientId,
               std::uint64_t resumeSession = 0,
               std::chrono::milliseconds handshakeTimeout =
                   std::chrono::milliseconds(10000));

  /// Frame and send one report datagram. Blocks on channel backpressure
  /// (the socket write would too); opportunistically folds any acks the
  /// daemon pushed back. Thread-safe.
  void submitDatagram(std::span<const std::uint8_t> payload) override;

  /// Upload a finished run and block for the daemon's verdict. Thread-safe.
  RunAckMsg completeRun(std::uint64_t jobIndex,
                        const core::RunArtifacts& artifacts,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(60000));

  /// Wait until the daemon has acked at least `frames` report frames.
  bool waitAckedFrames(std::uint64_t frames, std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint64_t sessionToken() const noexcept {
    return session_;
  }
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  /// Daemon-acked cumulative report frames (across resumed sessions).
  [[nodiscard]] std::uint64_t ackedFrames() const;
  [[nodiscard]] std::uint64_t ackedRuns() const;
  /// Report frames this incarnation sent.
  [[nodiscard]] std::uint64_t framesSent() const;

  /// The transport is dead: a send failed or the daemon hung up. A down
  /// client never recovers by itself — reconnect (ResilientIngestClient)
  /// with the session token and re-send the unacked tail.
  [[nodiscard]] bool down() const;

  /// Polite goodbye + close.
  void bye();

 private:
  /// Fold one daemon frame into client state. Locked by caller.
  void handleLocked(const Frame& frame);
  void pumpLocked();

  mutable std::mutex mutex_;
  ClientChannel channel_;
  std::uint64_t session_ = 0;
  bool resumed_ = false;
  std::uint64_t ackedFrames_ = 0;
  std::uint64_t ackedRuns_ = 0;
  std::uint64_t framesSent_ = 0;
  bool sendFailed_ = false;
  /// RunAcks that arrived while waiting for something else.
  std::map<std::uint64_t, RunAckMsg> runAcks_;
  /// Job indices whose accepted ack was already counted into ackedRuns_
  /// (dedupe against re-delivered acks).
  std::set<std::uint64_t> countedRuns_;
};

/// Local reconstruction of the daemon's published dashboard state:
/// snapshots replace, deltas increment. The daemon's single-writer
/// protocol guarantees mirror == daemon state after a drain.
struct DashboardMirror {
  ingest::RollingTotals totals;
  std::map<std::string, core::ApkLossAccount> accounts;
  std::uint64_t runsFolded = 0;
  std::uint64_t expectedRuns = 0;
  std::uint64_t reportsDelivered = 0;
  std::uint64_t reportsLost = 0;

  void applySnapshot(const SnapshotMsg& snapshot);
  void applyDelta(const DeltaMsg& delta);
};

class DashboardClient {
 public:
  DashboardClient(ChannelEndpoint endpoint, std::uint64_t clientId,
                  std::uint64_t resumeSession = 0,
                  std::chrono::milliseconds handshakeTimeout =
                      std::chrono::milliseconds(10000));

  void subscribe(Topic topic);

  /// Process daemon frames until the deadline (0 = only what is already
  /// buffered). Returns the number of frames folded.
  std::size_t poll(std::chrono::milliseconds timeout =
                       std::chrono::milliseconds(0));

  /// Poll until the mirror has folded a snapshot for `topic`.
  bool waitForSnapshot(Topic topic, std::chrono::milliseconds timeout);
  /// Poll until the mirror's Totals view has seen `runs` runs.
  bool waitForRuns(std::uint64_t runs, std::chrono::milliseconds timeout);

  [[nodiscard]] const DashboardMirror& mirror() const noexcept {
    return mirror_;
  }
  [[nodiscard]] std::uint64_t sessionToken() const noexcept {
    return session_;
  }
  [[nodiscard]] std::uint64_t snapshotsReceived(Topic topic) const {
    return snapshots_[static_cast<std::size_t>(topic)];
  }
  [[nodiscard]] std::uint64_t deltasReceived() const noexcept {
    return deltas_;
  }
  [[nodiscard]] bool byeReceived() const noexcept { return bye_; }
  [[nodiscard]] bool peerClosed() const { return channel_.peerClosed(); }

  void close() { channel_.close(); }

 private:
  ClientChannel channel_;
  DashboardMirror mirror_;
  std::uint64_t session_ = 0;
  std::array<std::uint64_t, 4> snapshots_{};
  std::uint64_t deltas_ = 0;
  bool bye_ = false;
};

class AdminClient {
 public:
  AdminClient(ChannelEndpoint endpoint, std::uint64_t clientId,
              std::chrono::milliseconds handshakeTimeout =
                  std::chrono::milliseconds(10000));

  /// Send one admin op and block for its ack. Throws std::runtime_error
  /// on timeout or hangup.
  AdminAckMsg request(AdminOp op, std::string arg = {},
                      std::chrono::milliseconds timeout =
                          std::chrono::milliseconds(60000));

  void close() { channel_.close(); }

 private:
  ClientChannel channel_;
};

}  // namespace libspector::spectord
