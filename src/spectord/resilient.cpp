#include "spectord/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace libspector::spectord {

using namespace std::chrono_literals;

// --- Reconnector -----------------------------------------------------------

Reconnector::Reconnector(ReconnectorConfig config)
    : config_(config), rng_(config.seed) {}

std::chrono::milliseconds Reconnector::nextDelay() {
  if (attempt_ >= config_.maxAttempts)
    throw std::runtime_error(
        "spectord reconnect: attempt budget exhausted after " +
        std::to_string(attempt_) + " consecutive failures");
  double base = static_cast<double>(config_.initialDelay.count());
  for (std::size_t i = 0; i < attempt_; ++i) base *= config_.multiplier;
  base = std::min(base, static_cast<double>(config_.maxDelay.count()));
  // Uniform jitter in [1 - j, 1 + j], drawn from the seeded stream so the
  // whole schedule is a pure function of (config, attempt history).
  const double factor = 1.0 + config_.jitter * (2.0 * rng_.uniform01() - 1.0);
  ++attempt_;
  const double jittered = std::max(0.0, base * factor);
  return std::chrono::milliseconds(static_cast<std::int64_t>(jittered));
}

// --- BreakerEndpoint -------------------------------------------------------

BreakerEndpoint::BreakerEndpoint(ChannelEndpoint upstream, Fault fault,
                                 std::size_t capacity)
    : upstream_(std::move(upstream)), fault_(fault) {
  ChannelPair pair = makeChannel(capacity);
  proxySide_ = pair.server;
  clientEnd_ = pair.client;
  toDaemon_ = std::thread([this] { pumpToDaemon(); });
  toClient_ = std::thread([this] { pumpToClient(); });
}

BreakerEndpoint::~BreakerEndpoint() {
  clientEnd_.close();
  upstream_.close();
  proxySide_.close();
  if (toDaemon_.joinable()) toDaemon_.join();
  if (toClient_.joinable()) toClient_.join();
}

void BreakerEndpoint::pumpToDaemon() {
  std::vector<std::uint8_t> buf;
  while (true) {
    buf.clear();
    const std::size_t n = proxySide_.readSome(buf);
    if (n == 0) {
      if (proxySide_.peerClosed() || upstream_.writeClosed()) break;
      proxySide_.waitReadable(50ms);
      continue;
    }
    const std::uint64_t before = forwarded_.load();
    if (fault_.kind != FaultKind::None && !fired_.load() &&
        before + n >= fault_.afterClientBytes) {
      // Deliver exactly up to the scheduled offset — mid-frame on
      // purpose — then kill the connection. Every kind ends dead: the
      // transport delivers an in-order prefix or nothing, never a hole,
      // which is what makes cumulative-ack resume exact.
      const std::size_t keep =
          fault_.afterClientBytes > before
              ? static_cast<std::size_t>(fault_.afterClientBytes - before)
              : 0;
      if (fault_.kind == FaultKind::Stall)
        std::this_thread::sleep_for(fault_.stall);
      if (keep > 0 && upstream_.writeAll({buf.data(), keep}))
        forwarded_.fetch_add(keep);
      fired_.store(true);
      upstream_.close();
      if (fault_.kind == FaultKind::Truncate)
        // The daemon already sees EOF mid-frame; the client keeps writing
        // into the doomed pipe for a beat before learning.
        std::this_thread::sleep_for(fault_.stall);
      proxySide_.close();
      return;
    }
    if (!upstream_.writeAll(buf)) break;
    forwarded_.fetch_add(n);
  }
  // Natural teardown (either side closed): propagate to the other.
  upstream_.close();
  proxySide_.close();
}

void BreakerEndpoint::pumpToClient() {
  std::vector<std::uint8_t> buf;
  while (true) {
    buf.clear();
    const std::size_t n = upstream_.readSome(buf);
    if (n == 0) {
      if (upstream_.peerClosed() || proxySide_.writeClosed()) break;
      upstream_.waitReadable(50ms);
      continue;
    }
    if (!proxySide_.writeAll(buf)) break;
  }
  proxySide_.close();
}

// --- ResilientIngestClient -------------------------------------------------

ResilientIngestClient::ResilientIngestClient(ConnectFn connect,
                                             std::uint64_t clientId,
                                             ResilientClientConfig config)
    : connect_(std::move(connect)),
      clientId_(clientId),
      config_(config),
      reconnector_(config.reconnect) {
  const std::scoped_lock lock(mutex_);
  ensureConnectedLocked();
}

bool ResilientIngestClient::ensureConnectedLocked() {
  if (client_ && !client_->down()) return false;
  client_.reset();
  bool first = connections_ == 0 && reconnector_.attempt() == 0;
  while (true) {
    // First-ever attempt goes immediately; every retry waits out the
    // backoff schedule (which throws once the budget is exhausted).
    if (!first) std::this_thread::sleep_for(reconnector_.nextDelay());
    first = false;
    std::unique_ptr<IngestClient> fresh;
    try {
      fresh = std::make_unique<IngestClient>(connect_(connectCalls_++),
                                             clientId_, session_,
                                             config_.handshakeTimeout);
    } catch (const std::exception&) {
      continue;  // daemon unreachable or handshake refused: back off
    }
    ++connections_;
    if (!fresh->resumed()) {
      // Fresh session: the first attach, or the daemon expired ours (an
      // admin drain/compact swept it while we were down). Its ack stream
      // restarts at zero for the tail we are about to replay, so rebase
      // the absolute accounting around tailBase_ — carrying the old
      // absolute indices would make pruning impossible and the tail grow
      // without bound. Frames the lost session folded but never acked do
      // get re-folded on replay; that is the cost of expiring a session
      // out from under a live client, surfaced by resumesRefused().
      if (session_ != 0) ++resumesRefused_;
      ackBase_ = tailBase_;
    }
    session_ = fresh->sessionToken();
    client_ = std::move(fresh);
    // Resume: the HelloAck's cumulative ack is an exact prefix of what we
    // offered (in-order transport), so drop that prefix and replay the
    // unacked tail verbatim.
    pruneAckedLocked();
    bool died = false;
    std::uint64_t index = tailBase_;
    for (const auto& payload : tail_) {
      client_->submitDatagram(payload);
      if (index < sentHigh_) ++framesResent_;
      sentHigh_ = std::max(sentHigh_, ++index);
      if (client_->down()) {
        died = true;  // killed again mid-replay; the next attach re-acks
        break;
      }
    }
    if (died || client_->down()) {
      client_.reset();
      continue;
    }
    reconnector_.reset();
    return true;
  }
}

void ResilientIngestClient::pruneAckedLocked() {
  if (!client_) return;
  const std::uint64_t acked = ackBase_ + client_->ackedFrames();
  while (tailBase_ < acked && !tail_.empty()) {
    tail_.pop_front();
    ++tailBase_;
  }
}

void ResilientIngestClient::submitDatagram(
    std::span<const std::uint8_t> payload) {
  const std::scoped_lock lock(mutex_);
  tail_.emplace_back(payload.begin(), payload.end());
  ++framesOffered_;
  // A transport already dead at entry means ensureConnectedLocked replays
  // the whole unacked tail — this frame included — so a direct send on
  // top of that would deliver (and fold) it twice, skewing the session's
  // cumulative ack stream.
  if (!ensureConnectedLocked()) {
    client_->submitDatagram(payload);
    sentHigh_ = std::max(sentHigh_, framesOffered_);
    // A failed send leaves the frame in the tail; reconnect replays it.
    if (client_->down()) ensureConnectedLocked();
  }
  pruneAckedLocked();
}

RunAckMsg ResilientIngestClient::completeRun(
    std::uint64_t jobIndex, const core::RunArtifacts& artifacts) {
  const std::scoped_lock lock(mutex_);
  for (std::size_t attempt = 1;; ++attempt) {
    ensureConnectedLocked();
    try {
      RunAckMsg ack =
          client_->completeRun(jobIndex, artifacts, config_.runAckTimeout);
      pruneAckedLocked();
      return ack;
    } catch (const std::exception&) {
      // Death (or silence) mid-upload: tear down and re-send on a resumed
      // session. If the daemon had already folded the job, the re-upload
      // comes back accepted with `duplicate` set — still one ack per call.
      client_.reset();
      ++runsResent_;
      // Fail loudly once the attempt budget is spent: a reachable daemon
      // that never acks resets the reconnect budget on every re-attach,
      // so without this cap a stuck pipeline retries forever.
      if (attempt >= config_.runUploadAttempts)
        throw std::runtime_error(
            "spectord reconnect: run upload budget exhausted after " +
            std::to_string(attempt) + " attempts (jobIndex " +
            std::to_string(jobIndex) + ")");
    }
  }
}

bool ResilientIngestClient::waitAckedFrames(std::uint64_t frames,
                                            std::chrono::milliseconds timeout) {
  const std::scoped_lock lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    ensureConnectedLocked();
    // `frames` counts offered frames absolutely; the live session's ack
    // stream may be rebased (refused resume), so translate before asking.
    const std::uint64_t target = frames > ackBase_ ? frames - ackBase_ : 0;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ackBase_ + client_->ackedFrames() >= frames;
    const auto slice = std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(100));
    if (client_->waitAckedFrames(target, slice)) {
      pruneAckedLocked();
      return true;
    }
    // Fell through: slice elapsed or the channel died; the loop
    // re-attaches (a no-op while the transport is still live).
  }
}

std::uint64_t ResilientIngestClient::sessionToken() const {
  const std::scoped_lock lock(mutex_);
  return session_;
}

std::uint64_t ResilientIngestClient::framesOffered() const {
  const std::scoped_lock lock(mutex_);
  return framesOffered_;
}

std::uint64_t ResilientIngestClient::ackedFrames() const {
  const std::scoped_lock lock(mutex_);
  return client_ ? ackBase_ + client_->ackedFrames() : tailBase_;
}

std::uint64_t ResilientIngestClient::reconnects() const {
  const std::scoped_lock lock(mutex_);
  return connections_ > 0 ? connections_ - 1 : 0;
}

std::uint64_t ResilientIngestClient::framesResent() const {
  const std::scoped_lock lock(mutex_);
  return framesResent_;
}

std::uint64_t ResilientIngestClient::runsResent() const {
  const std::scoped_lock lock(mutex_);
  return runsResent_;
}

std::uint64_t ResilientIngestClient::resumesRefused() const {
  const std::scoped_lock lock(mutex_);
  return resumesRefused_;
}

void ResilientIngestClient::bye() {
  const std::scoped_lock lock(mutex_);
  if (client_) client_->bye();
  client_.reset();
}

// --- ResilientDashboardClient ----------------------------------------------

ResilientDashboardClient::ResilientDashboardClient(ConnectFn connect,
                                                   std::uint64_t clientId,
                                                   ResilientClientConfig config)
    : connect_(std::move(connect)),
      clientId_(clientId),
      config_(config),
      reconnector_(config.reconnect) {
  ensureConnected();
}

void ResilientDashboardClient::foldCountersFromDead() {
  if (!client_) return;
  for (std::size_t i = 0; i < snapshotsBase_.size(); ++i)
    snapshotsBase_[i] += client_->snapshotsReceived(static_cast<Topic>(i));
  deltasBase_ += client_->deltasReceived();
  lastMirror_ = client_->mirror();
  client_.reset();
}

bool ResilientDashboardClient::ensureConnected() {
  if (client_ && !client_->peerClosed()) return false;
  // An orderly Bye means the daemon is going away for good — stay down
  // instead of hammering a stopped service with the full backoff budget.
  if (client_ && client_->byeReceived()) return false;
  foldCountersFromDead();
  bool first = connections_ == 0 && reconnector_.attempt() == 0;
  while (true) {
    if (!first) std::this_thread::sleep_for(reconnector_.nextDelay());
    first = false;
    std::unique_ptr<DashboardClient> fresh;
    try {
      fresh = std::make_unique<DashboardClient>(connect_(connectCalls_++),
                                                clientId_, session_,
                                                config_.handshakeTimeout);
    } catch (const std::exception&) {
      continue;
    }
    if (connections_ > 0) ++reconnects_;
    ++connections_;
    session_ = fresh->sessionToken();
    client_ = std::move(fresh);
    // Re-subscribing triggers fresh snapshots, which replace wholesale —
    // that is what restores mirror exactness after missed deltas.
    for (Topic topic : topics_) client_->subscribe(topic);
    reconnector_.reset();
    return true;
  }
}

void ResilientDashboardClient::subscribe(Topic topic) {
  const bool reattached = ensureConnected();
  const bool known =
      std::find(topics_.begin(), topics_.end(), topic) != topics_.end();
  // A reconnect already re-subscribed every recorded topic; sending the
  // request again would trigger a duplicate snapshot and skew the
  // snapshotsReceived counters.
  if (client_ && !(reattached && known)) client_->subscribe(topic);
  if (!known) topics_.push_back(topic);
}

std::size_t ResilientDashboardClient::poll(std::chrono::milliseconds timeout) {
  ensureConnected();
  if (!client_) return 0;
  const std::size_t folded = client_->poll(timeout);
  // Hangup mid-poll: re-attach now so the next poll starts on the fresh
  // snapshot instead of burning its whole timeout on a dead channel.
  if (client_->peerClosed() && !client_->byeReceived()) ensureConnected();
  return folded;
}

bool ResilientDashboardClient::waitForSnapshot(
    Topic topic, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (snapshotsReceived(topic) == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    poll(std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(100)));
  }
  return true;
}

bool ResilientDashboardClient::waitForRuns(std::uint64_t runs,
                                           std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (mirror().totals.runsFolded < runs) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    poll(std::min(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now),
        std::chrono::milliseconds(100)));
  }
  return true;
}

const DashboardMirror& ResilientDashboardClient::mirror() const {
  return client_ ? client_->mirror() : lastMirror_;
}

std::uint64_t ResilientDashboardClient::snapshotsReceived(Topic topic) const {
  const std::size_t i = static_cast<std::size_t>(topic);
  return snapshotsBase_[i] + (client_ ? client_->snapshotsReceived(topic) : 0);
}

std::uint64_t ResilientDashboardClient::deltasReceived() const {
  return deltasBase_ + (client_ ? client_->deltasReceived() : 0);
}

void ResilientDashboardClient::close() {
  if (client_) client_->close();
}

}  // namespace libspector::spectord
