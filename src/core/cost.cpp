#include "core/cost.hpp"

namespace libspector::core {

double DataPlanModel::usdPerHour(double bytesPerRun, double runMinutes) const {
  if (runMinutes <= 0.0) return 0.0;
  const double bytesPerHour = bytesPerRun * (60.0 / runMinutes);
  const double gbPerHour = bytesPerHour / (1024.0 * 1024.0 * 1024.0);
  return gbPerHour * usdPerGB;
}

double EnergyModel::batteryVoltage() const {
  return batteryWh / (batteryMah / 1000.0);
}

double EnergyModel::adActivePowerWatts() const {
  return (adActiveCurrentMa - idleCurrentMa) / 1000.0 * batteryVoltage();
}

double EnergyModel::adThroughputBytesPerSec() const {
  // (31 kB × 0.95) / (5 min × 9.3 s/min) ≈ 635 B/s.
  const double activeSeconds = assumedActiveMinutes * activeDownloadSecPerMin;
  return adContentBytesPerDay * paretoForegroundFraction / activeSeconds;
}

double EnergyModel::joulesPerByte() const {
  return adActivePowerWatts() / adThroughputBytesPerSec();
}

double EnergyModel::energyJoules(double bytes) const {
  return bytes * joulesPerByte();
}

double EnergyModel::batteryFraction(double bytes) const {
  const double wattHours = energyJoules(bytes) / 3600.0;
  return wattHours / batteryWh;
}

CostEstimate CostModel::estimate(double bytesPerRun) const {
  CostEstimate estimate;
  estimate.bytesPerRun = bytesPerRun;
  estimate.usdPerHour = plan_.usdPerHour(bytesPerRun, runMinutes_);
  estimate.energyJoules = energy_.energyJoules(bytesPerRun);
  estimate.batteryFraction = energy_.batteryFraction(bytesPerRun);
  return estimate;
}

}  // namespace libspector::core
