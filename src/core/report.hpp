// The UDP context report (paper §II-B2).
//
// For every unique socket an app creates, the Socket Supervisor emits one
// UDP datagram carrying the apk's sha256 checksum, the socket pair
// parameters, and the translated stack trace (method type signatures,
// innermost frame first).  The offline pipeline joins these reports with
// the packet capture by socket pair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace libspector::core {

struct UdpReport {
  std::string apkSha256;              // lowercase hex
  net::SocketPair socketPair;         // device endpoint first
  util::SimTimeMs timestampMs = 0;    // when the socket was connected
  /// Translated stack trace, innermost first. App frames carry full smali
  /// type signatures, framework frames their dotted frame name.
  std::vector<std::string> stackSignatures;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static UdpReport decode(std::span<const std::uint8_t> datagram);

  [[nodiscard]] bool operator==(const UdpReport&) const = default;
};

/// Versioned framed wire format for supervisor report datagrams.
///
/// The raw UdpReport encoding assumes a lossless, pre-framed channel; real
/// collection happens over UDP, where datagrams are lost, duplicated,
/// reordered and occasionally corrupted. The frame adds what the ingest
/// tier needs to detect and *account* for all four:
///
///   magic (u32) | version (u8) | crc32 (u32) | body
///   body = workerId (u32) | sequence (u64) | shaKey (u64) | payload (str)
///
/// - `workerId` identifies the sending run (the dispatcher uses the job
///   index, so ids are unique per study) and `sequence` counts that run's
///   reports from 0 — together they make loss, duplication and reordering
///   visible per apk at the receiver.
/// - `shaKey` is fnv1a64(apkSha256): a router can shard on it after
///   peek()ing the header, without decoding the payload.
/// - `crc32` covers the whole body, so a bit flip anywhere (header fields
///   included) is rejected instead of mis-attributed.
struct ReportFrame {
  static constexpr std::uint8_t kVersion = 1;

  std::uint32_t workerId = 0;
  std::uint64_t sequence = 0;
  UdpReport report;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Full decode: validates magic, version, checksum, payload, and that
  /// shaKey matches the payload's apk checksum. Throws util::DecodeError.
  [[nodiscard]] static ReportFrame decode(std::span<const std::uint8_t> datagram);

  /// Header-only view, enough to route the datagram to a shard.
  struct Header {
    std::uint32_t workerId = 0;
    std::uint64_t sequence = 0;
    std::uint64_t shaKey = 0;
  };
  /// Validates magic, version and checksum (an O(n) scan but no
  /// allocation) and returns the routing header. Throws util::DecodeError.
  [[nodiscard]] static Header peek(std::span<const std::uint8_t> datagram);

  /// True when `datagram` starts with the frame magic (cheap dispatch
  /// between framed and legacy raw-report datagrams).
  [[nodiscard]] static bool looksFramed(
      std::span<const std::uint8_t> datagram) noexcept;

  [[nodiscard]] bool operator==(const ReportFrame&) const = default;
};

/// Decode either wire format: a framed datagram yields its payload report,
/// a legacy raw datagram decodes directly. Throws util::DecodeError.
[[nodiscard]] UdpReport decodeReportDatagram(
    std::span<const std::uint8_t> datagram);

}  // namespace libspector::core
