// The UDP context report (paper §II-B2).
//
// For every unique socket an app creates, the Socket Supervisor emits one
// UDP datagram carrying the apk's sha256 checksum, the socket pair
// parameters, and the translated stack trace (method type signatures,
// innermost frame first).  The offline pipeline joins these reports with
// the packet capture by socket pair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace libspector::core {

struct UdpReport {
  std::string apkSha256;              // lowercase hex
  net::SocketPair socketPair;         // device endpoint first
  util::SimTimeMs timestampMs = 0;    // when the socket was connected
  /// Translated stack trace, innermost first. App frames carry full smali
  /// type signatures, framework frames their dotted frame name.
  std::vector<std::string> stackSignatures;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static UdpReport decode(std::span<const std::uint8_t> datagram);

  [[nodiscard]] bool operator==(const UdpReport&) const = default;
};

}  // namespace libspector::core
