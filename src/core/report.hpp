// The UDP context report (paper §II-B2).
//
// For every unique socket an app creates, the Socket Supervisor emits one
// UDP datagram carrying the apk's sha256 checksum, the socket pair
// parameters, and the translated stack trace (method type signatures,
// innermost frame first).  The offline pipeline joins these reports with
// the packet capture by socket pair.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"

namespace libspector::core {

struct UdpReport {
  std::string apkSha256;              // lowercase hex
  net::SocketPair socketPair;         // device endpoint first
  util::SimTimeMs timestampMs = 0;    // when the socket was connected
  /// Translated stack trace, innermost first. App frames carry full smali
  /// type signatures, framework frames their dotted frame name.
  std::vector<std::string> stackSignatures;
  /// Which logical request on the socket this report describes: 0 for the
  /// connect report (one report per socket, the legacy world), >= 1 for
  /// each keep-alive reuse boundary. Encoded as an *optional trailing*
  /// field — a zero ordinal emits the exact legacy bytes, and legacy
  /// datagrams decode with ordinal 0 — so the wire format stays
  /// byte-identical whenever the keep-alive scenario is off.
  std::uint32_t requestOrdinal = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static UdpReport decode(std::span<const std::uint8_t> datagram);

  [[nodiscard]] bool operator==(const UdpReport&) const = default;
};

/// Versioned framed wire format for supervisor report datagrams.
///
/// The raw UdpReport encoding assumes a lossless, pre-framed channel; real
/// collection happens over UDP, where datagrams are lost, duplicated,
/// reordered and occasionally corrupted. The frame adds what the ingest
/// tier needs to detect and *account* for all four:
///
///   magic (u32) | version (u8) | crc32 (u32) | body
///   body = workerId (u32) | sequence (u64) | shaKey (u64) | payload (str)
///
/// - `workerId` identifies the sending run (the dispatcher uses the job
///   index, so ids are unique per study) and `sequence` counts that run's
///   reports from 0 — together they make loss, duplication and reordering
///   visible per apk at the receiver.
/// - `shaKey` is fnv1a64(apkSha256): a router can shard on it after
///   peek()ing the header, without decoding the payload.
/// - `crc32` covers the whole body, so a bit flip anywhere (header fields
///   included) is rejected instead of mis-attributed.
struct ReportFrame {
  static constexpr std::uint8_t kVersion = 1;
  /// Highest frame version this build understands. v2 is a wire alias of
  /// the v1 layout (the PR 2 accounting upgrade changed artifacts, not the
  /// frame); v3 is the dictionary-compressed layout (DictReportFrame).
  static constexpr std::uint8_t kMaxVersion = 3;
  static constexpr std::uint8_t kDictVersion = 3;

  std::uint32_t workerId = 0;
  std::uint64_t sequence = 0;
  UdpReport report;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Full decode of a v1/v2 frame: validates magic, version, checksum,
  /// payload, and that shaKey matches the payload's apk checksum. v3
  /// frames throw (use DictReportFrame::decode or ReportStreamDecoder).
  /// Throws util::DecodeError.
  [[nodiscard]] static ReportFrame decode(std::span<const std::uint8_t> datagram);

  /// Header-only view, enough to route the datagram to a shard. The body
  /// prefix (workerId | sequence | shaKey) is shared by every version, so
  /// routing never needs the dictionary.
  struct Header {
    std::uint8_t version = kVersion;
    std::uint32_t workerId = 0;
    std::uint64_t sequence = 0;
    std::uint64_t shaKey = 0;
  };
  /// Validates magic, version and checksum (an O(n) scan but no
  /// allocation) and returns the routing header. Throws util::DecodeError.
  [[nodiscard]] static Header peek(std::span<const std::uint8_t> datagram);

  /// True when `datagram` starts with the frame magic (cheap dispatch
  /// between framed and legacy raw-report datagrams).
  [[nodiscard]] static bool looksFramed(
      std::span<const std::uint8_t> datagram) noexcept;

  [[nodiscard]] bool operator==(const ReportFrame&) const = default;
};

/// ReportFrame v3: the dictionary-compressed report frame.
///
/// A supervisor re-transmits the same handful of smali type signatures on
/// every socket its app opens. v3 sends each distinct signature once per
/// run — the frame that first references a signature carries its
/// definition (id, text); every frame thereafter carries just the u32 id.
///
///   magic (u32) | version=3 (u8) | crc32 (u32) | body
///   body = workerId (u32) | sequence (u64) | shaKey (u64)
///        | defCount (u32) | defCount × (id (u32) | signature (str))
///        | apkSha256 (str) | src ip (u32) | src port (u16)
///        | dst ip (u32) | dst port (u16) | timestampMs (u64)
///        | frameCount (u32) | frameCount × id (u32)
///
/// apkSha256 stays inline (not dictionary-encoded) so every delivered
/// frame self-identifies its apk even when the defining frame was lost;
/// only signature text can be missing, and the ingest router accounts for
/// that exactly (holes heal from duplicate defs or from the complete
/// artifact replay — see ShardedIngest).
struct DictReportFrame {
  std::uint32_t workerId = 0;
  std::uint64_t sequence = 0;
  std::string apkSha256;            // lowercase hex, inline
  net::SocketPair socketPair;
  util::SimTimeMs timestampMs = 0;
  /// Dictionary entries first referenced by this frame, in id order.
  std::vector<std::pair<std::uint32_t, std::string>> defs;
  /// Translated stack trace as dictionary ids, innermost first.
  std::vector<std::uint32_t> signatureIds;
  /// Logical-request ordinal (see UdpReport::requestOrdinal): optional
  /// trailing field, zero emits the exact legacy v3 bytes.
  std::uint32_t requestOrdinal = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Validates magic, version, checksum, and that shaKey matches the
  /// inline apk checksum. Throws util::DecodeError.
  [[nodiscard]] static DictReportFrame decode(
      std::span<const std::uint8_t> datagram);

  [[nodiscard]] bool operator==(const DictReportFrame&) const = default;
};

/// Sender-side dictionary state for one run: assigns dense u32 ids to
/// distinct signatures and emits each definition in the first frame that
/// references it. One encoder per supervisor — ids are meaningless across
/// runs. Not thread-safe (the supervisor serializes its sends).
class DictFrameEncoder {
 public:
  explicit DictFrameEncoder(std::uint32_t workerId) : workerId_(workerId) {}

  /// Frame `report` as a v3 datagram, folding unseen signatures into the
  /// run dictionary.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::uint64_t sequence,
                                                 const UdpReport& report);

  /// Distinct signatures defined so far.
  [[nodiscard]] std::size_t dictionarySize() const noexcept {
    return ids_.size();
  }

 private:
  std::uint32_t workerId_ = 0;
  std::unordered_map<std::string, std::uint32_t, util::TransparentStringHash,
                     std::equal_to<>>
      ids_;
};

/// Stateful receiver for a *reliable, in-order* report stream (the
/// emulator's local sink, the collection server): folds v3 dictionary
/// definitions per worker and resolves ids back to signature text, and
/// passes raw / v1 / v2 datagrams through unchanged. On an in-order
/// stream a definition always precedes its first reference, so an
/// unresolvable id means corruption — it throws util::DecodeError. The
/// lossy UDP path does NOT use this class; ShardedIngest keeps its own
/// per-apk dictionaries with exact hole accounting.
class ReportStreamDecoder {
 public:
  /// Decode any supported datagram format into a full report.
  [[nodiscard]] UdpReport decode(std::span<const std::uint8_t> datagram);

 private:
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, std::string>>
      dictByWorker_;
};

/// Decode either stateless wire format: a framed v1/v2 datagram yields its
/// payload report, a legacy raw datagram decodes directly. v3 datagrams
/// throw (they need stream state — use ReportStreamDecoder). Throws
/// util::DecodeError.
[[nodiscard]] UdpReport decodeReportDatagram(
    std::span<const std::uint8_t> datagram);

}  // namespace libspector::core
