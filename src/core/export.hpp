// CSV export of a study's figure datasets.
//
// Each writer emits one plot-ready file per paper figure so the evaluation
// can be re-plotted outside this repository (gnuplot/matplotlib). Fields
// containing commas or quotes are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>

#include "core/analysis.hpp"

namespace libspector::core {

/// Escape one CSV field (RFC 4180 quoting when needed).
[[nodiscard]] std::string csvField(std::string_view value);

void writeFig2Csv(const StudyAggregator& study, std::ostream& out);
void writeTopLibrariesCsv(const StudyAggregator& study, std::size_t n,
                          std::ostream& out);
void writeCdfCsv(const StudyAggregator& study, std::ostream& out);
void writeFlowRatiosCsv(const StudyAggregator& study, std::ostream& out);
void writeAntSharesCsv(const StudyAggregator& study, std::ostream& out);
void writeCategoryAveragesCsv(const StudyAggregator& study, std::ostream& out);
void writeHeatmapCsv(const StudyAggregator& study, std::ostream& out);
void writeCoverageCsv(const StudyAggregator& study, std::ostream& out);

/// Human-readable markdown study report: the §IV evaluation in one page
/// (totals, category shares, top libraries, AnT prevalence, flow ratios,
/// coverage, heatmap takeaway, §IV-D costs).
void writeStudyReport(const StudyAggregator& study, std::ostream& out);

/// Write every figure dataset into `directory` (created if missing):
/// fig2_categories.csv, fig3_top_libraries.csv, fig4_cdf.csv,
/// fig5_ratios.csv, fig6_ant_shares.csv, fig7_category_averages.csv,
/// fig9_heatmap.csv, fig10_coverage.csv. Returns the number of files.
std::size_t exportStudyCsv(const StudyAggregator& study,
                           const std::string& directory);

}  // namespace libspector::core
