// Compiled attribution automaton (the once-per-study "program").
//
// Attribution asks the same three hierarchical-prefix questions for every
// stack frame of every flow: is it built-in (footnote 2), is its package in
// the AnT / common-library lists (§III-D), and what does the LibRadar
// corpus elect as its category (Listing 2)? Each reference implementation
// re-walks string prefixes per query. This program compiles all four
// prefix sets into one flat component-trie over interned package
// components, built once per study:
//
//   - every dot-separated component of every compiled prefix is interned
//     into a private SymbolPool, so a query component resolves to a u32 id
//     with one lock-free probe (a component the pool has never seen cannot
//     be part of any compiled prefix — the walk stops immediately);
//   - trie edges live in one open-addressing table keyed by
//     (node id, component id), so descending one level is a hash of two
//     u32s plus a linear probe — no per-node allocation, no pointer chase
//     through node objects;
//   - each node carries the *cumulative* builtin/AnT/common flags of its
//     ancestor-or-self prefixes and the index of the nearest
//     ancestor-or-self corpus election, so one downward walk answers all
//     questions at once: the deepest reachable node already aggregates
//     every shorter match, exactly the hierarchical-prefix semantics of
//     the reference matchers.
//
// Queries are O(components) array probes with zero allocation and zero
// string comparison beyond the per-component pool probe. The structure is
// immutable after construction and therefore safe to share across worker
// threads; the corpus it was compiled from must outlive it (election
// results are borrowed views).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "radar/ant.hpp"
#include "radar/corpus.hpp"
#include "util/symbol.hpp"

namespace libspector::core {

class AttributionProgram {
 public:
  /// Compile the standard study inputs: the builtin-frame filter list, the
  /// corpus elections, and the AnT/common-library lists. Tests substitute
  /// their own sets to differential-test the trie against the reference
  /// matchers.
  explicit AttributionProgram(
      const radar::LibraryCorpus& corpus,
      std::span<const std::string_view> builtinPrefixes,
      const radar::PrefixList& ant, const radar::PrefixList& common);

  AttributionProgram(AttributionProgram&&) noexcept = default;
  AttributionProgram& operator=(AttributionProgram&&) noexcept = default;

  static constexpr std::uint32_t kNoElection = 0xFFFFFFFFu;

  /// Everything one package walk decides.
  struct Lookup {
    bool builtin = false;
    bool ant = false;
    bool common = false;
    std::uint32_t election = kNoElection;
  };

  /// Walk the dot-separated components of `package`. Equivalent to asking
  /// every reference matcher about every hierarchical ancestor.
  [[nodiscard]] Lookup lookupPackage(std::string_view package) const noexcept;

  /// Built-in filter for a raw report entry: smali signatures walk their
  /// slash-separated class components plus the method name (mirroring
  /// util::isHierarchicalPrefixOfSlashedFrame); anything else walks as a
  /// dotted frame name.
  [[nodiscard]] bool isBuiltinFrame(std::string_view entry) const noexcept;

  /// The elected category for a package walk: the election winner, or
  /// radar::kUnknownCategory when no corpus prefix matched (or the matched
  /// election tallied no votes). The view borrows from the corpus.
  [[nodiscard]] std::string_view categoryOf(const Lookup& hit) const noexcept;

  /// The corpus prefix whose election `hit` resolved to (empty when none).
  [[nodiscard]] std::string_view matchedPrefixOf(
      const Lookup& hit) const noexcept;

  /// Trampoline-elision queries (DESIGN.md §14). Static and allocation-free
  /// (the junk-package rule is a pure string property, so nothing needs the
  /// trie): equivalent to core::isJunkPackageFrame /
  /// core::isReflectionMarkerFrame, which stay as the reference matchers
  /// for the differential tests.
  [[nodiscard]] static bool isJunkPackageEntry(std::string_view entry) noexcept;
  [[nodiscard]] static bool isReflectionMarker(std::string_view entry) noexcept;

  [[nodiscard]] std::size_t nodeCount() const noexcept { return flags_.size(); }
  [[nodiscard]] std::size_t electionCount() const noexcept {
    return elections_.size();
  }

 private:
  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;
  static constexpr std::uint8_t kBuiltinBit = 1;
  static constexpr std::uint8_t kAntBit = 2;
  static constexpr std::uint8_t kCommonBit = 4;

  struct Edge {
    std::uint64_t key = 0;  // ((node + 1) << 32) | componentId; 0 = empty
    std::uint32_t to = kNoNode;
  };

  [[nodiscard]] std::uint32_t childOf(std::uint32_t node,
                                      std::uint32_t componentId) const noexcept;
  [[nodiscard]] Lookup lookupAt(std::uint32_t node) const noexcept;

  /// Package components interned during compilation; find()-only at query
  /// time (lock-free).
  util::SymbolPool components_;
  /// Flat edge table, power-of-two sized, linear probing.
  std::vector<Edge> edges_;
  std::uint64_t edgeMask_ = 0;
  /// Per-node cumulative prefix flags (ancestor-or-self).
  std::vector<std::uint8_t> flags_;
  /// Per-node nearest ancestor-or-self election index.
  std::vector<std::uint32_t> electionAt_;
  /// Borrowed corpus election results, indexed by electionAt_ values.
  std::vector<radar::LibraryCorpus::ElectionView> elections_;
};

}  // namespace libspector::core
