// The Method Monitor (paper §II-A2, §II-B1, §IV-C).
//
// Wraps the modified-ART unique-method tracer, writes the method trace file
// at the end of an experiment, and computes Java method coverage: the ratio
// of trace-file signatures that exist in the apk's dex files over the total
// number of dex methods.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dex/apk.hpp"
#include "rt/tracer.hpp"

namespace libspector::core {

struct CoverageResult {
  std::size_t coveredMethods = 0;  // trace entries found in the dex files
  std::size_t totalMethods = 0;    // all dex methods
  std::size_t traceEntries = 0;    // full trace size (incl. framework calls)

  [[nodiscard]] double ratio() const noexcept {
    return totalMethods == 0
               ? 0.0
               : static_cast<double>(coveredMethods) /
                     static_cast<double>(totalMethods);
  }
};

class MethodMonitor {
 public:
  MethodMonitor() = default;

  /// The tracer to hand to the runtime (Android Profiler listener analogue).
  [[nodiscard]] rt::MethodTracer& tracer() noexcept { return tracer_; }

  /// Write the method trace file: all unique recorded entries.
  [[nodiscard]] std::vector<std::string> writeTraceFile() const {
    return tracer_.traceFile();
  }

  /// Coverage of `apk` given a trace file (§IV-C methodology: intersect the
  /// trace with the dex method set, divide by dex method count).
  [[nodiscard]] static CoverageResult computeCoverage(
      const std::vector<std::string>& traceFile, const dex::ApkFile& apk);

 private:
  rt::UniqueMethodTracer tracer_;
};

}  // namespace libspector::core
