// The Method Monitor (paper §II-A2, §II-B1, §IV-C).
//
// Wraps the modified-ART unique-method tracer, writes the method trace file
// at the end of an experiment, and computes Java method coverage: the ratio
// of trace-file signatures that exist in the apk's dex files over the total
// number of dex methods.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dex/apk.hpp"
#include "rt/tracer.hpp"

namespace libspector::core {

/// One keep-alive request boundary observed by the runtime: pooled socket
/// `socketId` started carrying logical request `ordinal` (>= 1; the connect
/// is ordinal 0) at simulated time `timestampMs`. Persisted in RunArtifacts
/// (v3) so offline consumers can audit per-request flow splitting.
struct RequestBoundary {
  std::uint64_t socketId = 0;
  std::uint32_t ordinal = 0;
  std::uint64_t timestampMs = 0;

  [[nodiscard]] bool operator==(const RequestBoundary&) const = default;
};

struct CoverageResult {
  std::size_t coveredMethods = 0;  // trace entries found in the dex files
  std::size_t totalMethods = 0;    // all dex methods
  std::size_t traceEntries = 0;    // full trace size (incl. framework calls)

  [[nodiscard]] double ratio() const noexcept {
    return totalMethods == 0
               ? 0.0
               : static_cast<double>(coveredMethods) /
                     static_cast<double>(totalMethods);
  }
};

class MethodMonitor {
 public:
  MethodMonitor() = default;
  // The boundary tracer holds a reference to this monitor.
  MethodMonitor(const MethodMonitor&) = delete;
  MethodMonitor& operator=(const MethodMonitor&) = delete;

  /// The tracer to hand to the runtime (Android Profiler listener analogue).
  /// Forwards method entries to the unique-method tracer and records
  /// request-boundary events on the side.
  [[nodiscard]] rt::MethodTracer& tracer() noexcept { return boundaryTracer_; }

  /// Write the method trace file: all unique recorded entries.
  [[nodiscard]] std::vector<std::string> writeTraceFile() const {
    return tracer_.traceFile();
  }

  /// Request boundaries in observation order (empty unless the keep-alive
  /// scenario reused connections during the run).
  [[nodiscard]] const std::vector<RequestBoundary>& requestBoundaries()
      const noexcept {
    return boundaries_;
  }

  /// Coverage of `apk` given a trace file (§IV-C methodology: intersect the
  /// trace with the dex method set, divide by dex method count).
  [[nodiscard]] static CoverageResult computeCoverage(
      const std::vector<std::string>& traceFile, const dex::ApkFile& apk);

 private:
  class BoundaryTracer final : public rt::MethodTracer {
   public:
    explicit BoundaryTracer(MethodMonitor& owner) noexcept : owner_(owner) {}
    void onMethodEntry(std::string_view signature) override {
      owner_.tracer_.onMethodEntry(signature);
    }
    [[nodiscard]] std::vector<std::string> traceFile() const override {
      return owner_.tracer_.traceFile();
    }
    [[nodiscard]] std::size_t droppedCount() const noexcept override {
      return owner_.tracer_.droppedCount();
    }
    void onRequestBoundary(std::uint64_t socketId, std::uint32_t ordinal,
                           std::uint64_t timestampMs) override {
      owner_.boundaries_.push_back({socketId, ordinal, timestampMs});
    }

   private:
    MethodMonitor& owner_;
  };

  rt::UniqueMethodTracer tracer_;
  std::vector<RequestBoundary> boundaries_;
  BoundaryTracer boundaryTracer_{*this};
};

}  // namespace libspector::core
