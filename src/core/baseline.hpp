// Prior-work network-only classifiers (paper §I, §V).
//
// Before Libspector, ad-library traffic was identified from what is visible
// on the wire: Xu et al. and Maier et al. matched the HTTP User-Agent
// header against known ad-SDK strings; Tongaonkar et al. matched hostnames
// against ad-domain patterns. Both are implemented here so the §IV-E
// comparison can be run quantitatively: each classifier labels HTTP
// exchanges, exchanges are joined to Libspector's attributed flows by
// socket pair and connection window, and precision/recall are scored
// against ground truth.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/attribution.hpp"
#include "net/capture.hpp"

namespace libspector::core {

/// Xu et al. / Maier et al.: flag traffic whose User-Agent contains a known
/// ad-SDK marker. Misses every request riding the generic platform UA.
class UserAgentAdClassifier {
 public:
  /// Built with the standard marker list; extend with `addMarker`.
  UserAgentAdClassifier();

  void addMarker(std::string marker);
  [[nodiscard]] bool isAdTraffic(const net::HttpExchange& exchange) const;
  [[nodiscard]] std::size_t markerCount() const noexcept { return markers_.size(); }

 private:
  std::vector<std::string> markers_;  // lowercase substrings
};

/// Tongaonkar et al.: flag traffic to hostnames matching ad-name patterns.
/// Misses ad creatives served from CDNs and generic API hosts.
class HostnameAdClassifier {
 public:
  HostnameAdClassifier();

  void addPattern(std::string pattern);
  [[nodiscard]] bool isAdTraffic(std::string_view host) const;

 private:
  std::vector<std::string> patterns_;  // lowercase substrings
};

/// One HTTP exchange joined to the attributed flow that owns its socket.
struct JoinedExchange {
  const net::HttpExchange* exchange = nullptr;
  const FlowRecord* flow = nullptr;
};

/// Join every HTTP exchange in `capture` with the flow owning its socket
/// pair at that time (same windowing rule as traffic attribution).
/// Exchanges with no matching flow are dropped.
[[nodiscard]] std::vector<JoinedExchange> joinExchangesToFlows(
    std::span<const FlowRecord> flows, const net::CaptureFile& capture);

/// Binary-classification tally for an ad-traffic detector.
struct BaselineScore {
  std::size_t truePositives = 0;
  std::size_t falsePositives = 0;
  std::size_t falseNegatives = 0;
  std::size_t trueNegatives = 0;
  std::uint64_t missedBytes = 0;  // ground-truth ad bytes the detector missed

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
};

/// Score a per-exchange detector against per-flow ground truth.
/// `isAdTruth` decides whether a flow is really advertisement traffic;
/// `detect` is the baseline's verdict for one joined exchange.
[[nodiscard]] BaselineScore scoreBaseline(
    std::span<const JoinedExchange> joined,
    const std::function<bool(const FlowRecord&)>& isAdTruth,
    const std::function<bool(const JoinedExchange&)>& detect);

}  // namespace libspector::core
