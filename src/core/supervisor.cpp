#include "core/supervisor.hpp"

#include "hook/native.hpp"
#include "rt/framework.hpp"
#include "util/log.hpp"
#include "util/sha256.hpp"

namespace libspector::core {

SocketSupervisor::SocketSupervisor(net::SockEndpoint collector,
                                   std::uint32_t workerId)
    : collector_(collector), workerId_(workerId) {}

std::string translateFrame(const rt::StackFrameSnapshot& frame,
                           const rt::AppProgram& program,
                           const dex::FrameTranslationTable& translations) {
  if (frame.isAppFrame()) {
    // Xposed hands the hook the reflected Method object, so app frames are
    // overload-precise.
    return program.method(static_cast<rt::MethodId>(frame.methodId)).signature;
  }
  // Framework frames: try the dex translation table (third-party code
  // bundled in the apk shows up here), otherwise keep the frame name.
  const auto& overloads = translations.lookup(frame.name);
  if (!overloads.empty()) return overloads.front();
  return frame.name;
}

void SocketSupervisor::primeApkContext(std::string apkSha256,
                                       dex::FrameTableCache* tableCache) {
  pendingApkSha256_ = std::move(apkSha256);
  tableCache_ = tableCache;
}

void SocketSupervisor::onAppLoaded(rt::Interpreter& runtime,
                                   const dex::ApkFile& apk) {
  // Digest memoization: reuse the host's streaming hash when primed, so
  // one app load hashes the apk at most once across emulator + supervisor.
  std::string sha = pendingApkSha256_.empty() ? util::toHex(apk.sha256())
                                              : std::move(pendingApkSha256_);
  pendingApkSha256_.clear();
  auto translations =
      tableCache_ != nullptr
          ? tableCache_->tableFor(sha, apk)
          : std::make_shared<const dex::FrameTranslationTable>(apk);
  auto state = std::make_shared<AppState>(
      AppState{std::move(sha), std::move(translations)});
  runtime.registerPostHook(
      std::string(rt::kSocketConnectFrame),
      [this, state](const rt::SocketHookContext& context) {
        onSocketConnected(context, state);
      });
  // Keep-alive reuse fires the same observation with a nonzero request
  // ordinal: one report per *logical request*, not per socket, so the
  // offline pipeline can split a reused connection's capture stream into
  // per-request flows.
  runtime.registerPostHook(
      std::string(rt::kRequestBoundaryFrame),
      [this, state](const rt::SocketHookContext& context) {
        onSocketConnected(context, state);
      });
}

void SocketSupervisor::onSocketConnected(
    const rt::SocketHookContext& context,
    const std::shared_ptr<AppState>& state) {
  rt::Interpreter& runtime = context.runtime;
  net::NetworkStack& stack = runtime.networkStack();

  // Shared library call: getsockname + getpeername.
  const auto pair = hook::connectionParameters(stack, context.socketId);
  if (!pair) {
    util::logWarn("SocketSupervisor: no connection parameters for socket");
    return;
  }

  UdpReport report;
  report.apkSha256 = state->apkSha256;
  report.socketPair = *pair;
  report.timestampMs = runtime.clock().now();
  report.requestOrdinal = context.requestOrdinal;

  const auto trace = runtime.getStackTrace();
  report.stackSignatures.reserve(trace.size());
  for (const auto& frame : trace)
    report.stackSignatures.push_back(
        translateFrame(frame, runtime.program(), *state->translations));

  // Framed with the worker id and this run's next sequence number: the
  // channel is best-effort UDP, and only sender-assigned sequencing lets
  // the ingest tier account loss/dup/reorder instead of absorbing it.
  std::vector<std::uint8_t> datagram;
  if (dictEncoder_) {
    datagram = dictEncoder_->encode(reportsSent_, report);
  } else {
    ReportFrame frame;
    frame.workerId = workerId_;
    frame.sequence = reportsSent_;
    frame.report = std::move(report);
    datagram = frame.encode();
  }
  stack.sendUdpDatagram(collector_, datagram);
  ++reportsSent_;
}

}  // namespace libspector::core
