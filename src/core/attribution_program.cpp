#include "core/attribution_program.hpp"

#include <utility>

#include "dex/type_signature.hpp"
#include "rt/framework.hpp"

namespace libspector::core {

namespace {

constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

/// Mutable trie shape used only during compilation; the flat tables are
/// extracted from it and it is dropped.
struct BuildNode {
  // (componentId, child node). Linear scan: compile-time fan-out is tiny
  // (tens of children at the root, a handful below).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> children;
  std::uint8_t ownFlags = 0;
  std::uint32_t ownElection = kNoIndex;
};

[[nodiscard]] std::uint64_t mixEdgeKey(std::uint64_t key) noexcept {
  key *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing of the packed pair
  return key ^ (key >> 29);
}

}  // namespace

AttributionProgram::AttributionProgram(
    const radar::LibraryCorpus& corpus,
    std::span<const std::string_view> builtinPrefixes,
    const radar::PrefixList& ant, const radar::PrefixList& common) {
  std::vector<BuildNode> nodes(1);  // node 0 = root (the empty prefix)

  const auto insertPath = [&](std::string_view prefix, std::uint8_t flagBit,
                              std::uint32_t electionIndex) {
    // The reference matchers never match an empty prefix; keep the root
    // flag-free so an unmatched walk answers "nothing".
    if (prefix.empty()) return;
    std::uint32_t node = 0;
    std::size_t pos = 0;
    while (true) {
      const std::size_t dot = prefix.find('.', pos);
      const std::string_view component = prefix.substr(
          pos, (dot == std::string_view::npos ? prefix.size() : dot) - pos);
      const std::uint32_t componentId = components_.intern(component).id();
      std::uint32_t next = kNoNode;
      for (const auto& [id, child] : nodes[node].children) {
        if (id == componentId) {
          next = child;
          break;
        }
      }
      if (next == kNoNode) {
        next = static_cast<std::uint32_t>(nodes.size());
        nodes[node].children.emplace_back(componentId, next);
        nodes.emplace_back();
      }
      node = next;
      if (dot == std::string_view::npos) break;
      pos = dot + 1;
    }
    nodes[node].ownFlags |= flagBit;
    if (electionIndex != kNoIndex) nodes[node].ownElection = electionIndex;
  };

  for (const std::string_view prefix : builtinPrefixes)
    insertPath(prefix, kBuiltinBit, kNoIndex);
  for (const std::string_view prefix : ant.prefixes())
    insertPath(prefix, kAntBit, kNoIndex);
  for (const std::string_view prefix : common.prefixes())
    insertPath(prefix, kCommonBit, kNoIndex);
  elections_ = corpus.electionViews();
  for (std::size_t i = 0; i < elections_.size(); ++i)
    insertPath(elections_[i].prefix, 0, static_cast<std::uint32_t>(i));

  // Fold ancestor state downward. insertPath always creates a child after
  // its parent, so parent index < child index and one forward pass settles
  // every node before its children are visited.
  flags_.assign(nodes.size(), 0);
  electionAt_.assign(nodes.size(), kNoElection);
  flags_[0] = nodes[0].ownFlags;
  electionAt_[0] = nodes[0].ownElection;
  std::size_t edgeCount = 0;
  for (std::size_t node = 0; node < nodes.size(); ++node) {
    edgeCount += nodes[node].children.size();
    for (const auto& [componentId, child] : nodes[node].children) {
      flags_[child] = nodes[child].ownFlags | flags_[node];
      electionAt_[child] = nodes[child].ownElection != kNoIndex
                               ? nodes[child].ownElection
                               : electionAt_[node];
    }
  }

  // Scatter the edges into one open-addressing table at load factor <= 1/2.
  std::size_t capacity = 16;
  while (capacity < edgeCount * 2) capacity *= 2;
  edges_.assign(capacity, Edge{});
  edgeMask_ = capacity - 1;
  for (std::size_t node = 0; node < nodes.size(); ++node) {
    for (const auto& [componentId, child] : nodes[node].children) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(node + 1) << 32) | componentId;
      for (std::uint64_t slot = mixEdgeKey(key) & edgeMask_;;
           slot = (slot + 1) & edgeMask_) {
        if (edges_[slot].key == 0) {
          edges_[slot] = {key, child};
          break;
        }
      }
    }
  }
}

std::uint32_t AttributionProgram::childOf(
    std::uint32_t node, std::uint32_t componentId) const noexcept {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node + 1) << 32) | componentId;
  for (std::uint64_t slot = mixEdgeKey(key) & edgeMask_;;
       slot = (slot + 1) & edgeMask_) {
    const Edge& edge = edges_[slot];
    if (edge.key == key) return edge.to;
    if (edge.key == 0) return kNoNode;
  }
}

AttributionProgram::Lookup AttributionProgram::lookupAt(
    std::uint32_t node) const noexcept {
  const std::uint8_t flags = flags_[node];
  return {(flags & kBuiltinBit) != 0, (flags & kAntBit) != 0,
          (flags & kCommonBit) != 0, electionAt_[node]};
}

AttributionProgram::Lookup AttributionProgram::lookupPackage(
    std::string_view package) const noexcept {
  if (package.empty()) return {};
  std::uint32_t node = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t dot = package.find('.', pos);
    const std::string_view component = package.substr(
        pos, (dot == std::string_view::npos ? package.size() : dot) - pos);
    // A component the pool never interned cannot appear in any compiled
    // prefix; the deepest node reached already aggregates every shorter
    // match, so stopping early is exact.
    const std::uint32_t componentId = components_.find(component).id();
    if (componentId == util::Symbol::kNoId) break;
    const std::uint32_t next = childOf(node, componentId);
    if (next == kNoNode) break;
    node = next;
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return lookupAt(node);
}

bool AttributionProgram::isBuiltinFrame(std::string_view entry) const noexcept {
  if (const auto sig = dex::parseSignatureView(entry)) {
    // The reference compares the virtual dotted frame name
    // slashToDot(slashedClass) + "." + methodName with '.' boundaries, so
    // both '/' and '.' split the class part and '.' splits the method.
    std::uint32_t node = 0;
    bool walking = true;
    const auto walkPiece = [&](std::string_view piece) {
      std::size_t pos = 0;
      while (walking) {
        const std::size_t cut = piece.find_first_of("/.", pos);
        const std::string_view component = piece.substr(
            pos, (cut == std::string_view::npos ? piece.size() : cut) - pos);
        const std::uint32_t componentId = components_.find(component).id();
        const std::uint32_t next = componentId == util::Symbol::kNoId
                                       ? kNoNode
                                       : childOf(node, componentId);
        if (next == kNoNode) {
          walking = false;
          break;
        }
        node = next;
        if (cut == std::string_view::npos) break;
        pos = cut + 1;
      }
    };
    walkPiece(sig->slashedClass);
    if (walking) walkPiece(sig->methodName);
    return (flags_[node] & kBuiltinBit) != 0;
  }
  return lookupPackage(entry).builtin;
}

std::string_view AttributionProgram::categoryOf(
    const Lookup& hit) const noexcept {
  if (hit.election == kNoElection) return radar::kUnknownCategory;
  const auto& election = elections_[hit.election];
  return election.winner.empty() ? radar::kUnknownCategory : election.winner;
}

std::string_view AttributionProgram::matchedPrefixOf(
    const Lookup& hit) const noexcept {
  return hit.election == kNoElection ? std::string_view{}
                                     : elections_[hit.election].prefix;
}

bool AttributionProgram::isJunkPackageEntry(std::string_view entry) noexcept {
  // Allocation-free mirror of the reference: derive the entry's package
  // (class and method stripped) and require >= 1 component, all <= 2 chars.
  const auto allComponentsShort = [](std::string_view package,
                                     char separator) noexcept {
    std::size_t componentLength = 0;
    for (const char c : package) {
      if (c == separator) {
        if (componentLength > 2) return false;
        componentLength = 0;
      } else {
        ++componentLength;
      }
    }
    return componentLength <= 2;
  };
  if (const auto sig = dex::parseSignatureView(entry)) {
    const std::size_t lastSlash = sig->slashedClass.rfind('/');
    // lastSlash == 0 leaves a zero-length package ("/Foo;"), which the
    // reference treats as packageless, not junk.
    if (lastSlash == std::string_view::npos || lastSlash == 0) return false;
    return allComponentsShort(sig->slashedClass.substr(0, lastSlash), '/');
  }
  // Dotted frame name: strip the method, then the class.
  std::size_t dot = entry.rfind('.');
  if (dot == std::string_view::npos) return false;
  dot = entry.substr(0, dot).rfind('.');
  // dot == 0 (entry like ".Cls.run") leaves an empty package: not junk.
  if (dot == std::string_view::npos || dot == 0) return false;
  return allComponentsShort(entry.substr(0, dot), '.');
}

bool AttributionProgram::isReflectionMarker(std::string_view entry) noexcept {
  return entry == rt::kReflectMethodInvokeFrame ||
         entry == rt::kReflectProxyInvokeFrame;
}

}  // namespace libspector::core
