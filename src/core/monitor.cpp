#include "core/monitor.hpp"

#include <unordered_set>

#include "dex/disassembler.hpp"

namespace libspector::core {

CoverageResult MethodMonitor::computeCoverage(
    const std::vector<std::string>& traceFile, const dex::ApkFile& apk) {
  const auto dexSignatures = dex::allMethodSignatures(apk);
  const std::unordered_set<std::string_view> dexSet(dexSignatures.begin(),
                                                    dexSignatures.end());
  CoverageResult result;
  result.totalMethods = dexSignatures.size();
  result.traceEntries = traceFile.size();
  for (const auto& entry : traceFile) {
    if (dexSet.contains(entry)) ++result.coveredMethods;
  }
  return result;
}

}  // namespace libspector::core
