// The Socket Supervisor (paper §II-A1, §II-B2).
//
// Implemented as an Xposed module: it post-hooks socket connection calls,
// captures the live Java stack trace, translates every frame to its method
// type signature using information parsed from the apk's dex files, obtains
// the socket pair via the JNI shared library (getsockname/getpeername), and
// ships one UDP report per socket to the data collection server.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/report.hpp"
#include "dex/disassembler.hpp"
#include "hook/xposed.hpp"
#include "net/ip.hpp"

namespace libspector::core {

/// Where the collection server listens (10.0.2.2 is the emulator's host
/// loopback alias, as on a real Android emulator).
inline constexpr net::SockEndpoint kDefaultCollectorEndpoint{{10, 0, 2, 2}, 5005};

class SocketSupervisor final : public hook::XposedModule {
 public:
  /// `workerId` stamps every framed report this supervisor emits; the
  /// dispatcher passes the job index so (workerId, sequence) is unique per
  /// study and the ingest tier can account loss/duplication per apk.
  explicit SocketSupervisor(
      net::SockEndpoint collector = kDefaultCollectorEndpoint,
      std::uint32_t workerId = 0);

  /// Switch this run's report datagrams to the dictionary-compressed v3
  /// frame (each distinct signature sent once, then by id). The receiving
  /// tier must understand v3 — the sharded ingest router and the
  /// ReportStreamDecoder both do; plain decodeReportDatagram does not.
  void enableDictionaryFrames() { dictEncoder_.emplace(workerId_); }

  /// Pre-seed the next onAppLoaded with work the host already did: the
  /// apk's hex sha256 (the emulator computes it once per run for the
  /// artifact bundle) and an optional fleet-wide translation-table cache.
  /// Without this the supervisor re-serializes the apk to hash it and
  /// rebuilds the class table on every app load.
  void primeApkContext(std::string apkSha256,
                       dex::FrameTableCache* tableCache = nullptr);

  /// Installs the post-hook on java.net.Socket.connect; resolves the frame
  /// -> signature translation table and the apk checksum the reports will
  /// carry (both from primeApkContext when available, computed otherwise).
  void onAppLoaded(rt::Interpreter& runtime, const dex::ApkFile& apk) override;

  [[nodiscard]] std::size_t reportsSent() const noexcept { return reportsSent_; }

 private:
  struct AppState {
    std::string apkSha256;
    std::shared_ptr<const dex::FrameTranslationTable> translations;
  };

  void onSocketConnected(const rt::SocketHookContext& context,
                         const std::shared_ptr<AppState>& state);

  net::SockEndpoint collector_;
  std::uint32_t workerId_ = 0;
  /// Engaged when v3 dictionary frames are enabled for this run.
  std::optional<DictFrameEncoder> dictEncoder_;
  std::size_t reportsSent_ = 0;
  std::string pendingApkSha256_;
  dex::FrameTableCache* tableCache_ = nullptr;
};

/// Translate one stack frame to what the report should carry: the exact
/// type signature for app frames (overload-precise), the frame name for
/// framework frames that are not in the apk's dex files.
[[nodiscard]] std::string translateFrame(
    const rt::StackFrameSnapshot& frame, const rt::AppProgram& program,
    const dex::FrameTranslationTable& translations);

}  // namespace libspector::core
