// The §IV analysis pipeline: aggregates attributed flows across a whole
// study into the datasets behind every figure and table of the paper's
// evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/artifacts.hpp"
#include "core/attribution.hpp"
#include "util/symbol.hpp"

namespace libspector::core {

/// Accumulates one study; query methods expose figure-shaped views.
///
/// Entity maps key on the ids of a study-scoped util::SymbolPool: addApp
/// translates each flow's symbols (owned by whatever attributor produced
/// them) into the aggregator's own pool once per distinct entry, so the
/// per-flow fold is u32 map updates instead of string hashing, and nothing
/// aggregated references a pool the aggregator does not own. Move-only
/// (it owns the pool its ids point into).
class StudyAggregator {
 public:
  StudyAggregator() = default;
  StudyAggregator(StudyAggregator&&) noexcept = default;
  StudyAggregator& operator=(StudyAggregator&&) noexcept = default;

  /// Fold one app's run and attributed flows into the study.
  void addApp(const RunArtifacts& run, std::span<const FlowRecord> flows);

  // ---- §IV-A headline numbers -------------------------------------------

  struct Totals {
    std::uint64_t totalBytes = 0;
    std::uint64_t sentBytes = 0;   // device -> servers
    std::uint64_t recvBytes = 0;   // servers -> device
    std::size_t flowCount = 0;
    std::size_t appCount = 0;
    std::size_t originLibraryCount = 0;
    std::size_t twoLevelLibraryCount = 0;
    std::size_t domainCount = 0;
    /// TCP payload no flow covers (context reports lost in flight).
    std::uint64_t unattributedBytes = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// UDP share of total traffic and DNS share of UDP (§III-E), excluding
  /// Libspector's own report datagrams.
  struct UdpStats {
    std::uint64_t udpBytes = 0;      // non-Libspector UDP
    std::uint64_t dnsBytes = 0;
    std::uint64_t reportBytes = 0;   // Libspector UDP reports
    std::uint64_t totalBytes = 0;    // everything in the captures
  };
  [[nodiscard]] const UdpStats& udpStats() const noexcept { return udp_; }

  // ---- Fig. 2 ------------------------------------------------------------

  /// app category -> (library category -> bytes). Materialized from the
  /// internal id-keyed matrix at query time (query methods are cold; the
  /// per-flow fold is the hot path).
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  transferByAppAndLibCategory() const;
  /// library category -> total bytes (the legend percentages).
  [[nodiscard]] std::map<std::string, std::uint64_t> transferByLibCategory() const;

  // ---- Fig. 3 ------------------------------------------------------------

  struct RankedEntry {
    std::string name;
    std::uint64_t bytes = 0;
    std::string category;
  };
  [[nodiscard]] std::vector<RankedEntry> topOriginLibraries(std::size_t n) const;
  [[nodiscard]] std::vector<RankedEntry> topTwoLevelLibraries(std::size_t n) const;

  // ---- Fig. 4 / Fig. 5 ----------------------------------------------------

  enum class Entity { App, Library, Domain };
  /// Per-entity sent (device->server) byte totals, unordered.
  [[nodiscard]] std::vector<double> sentTotals(Entity entity) const;
  [[nodiscard]] std::vector<double> recvTotals(Entity entity) const;

  struct RatioStats {
    std::vector<double> ratios;  // sorted ascending
    double mean = 0.0;
  };
  /// Received/sent per app or library; for domains, bytes the domain's
  /// servers sent over bytes they received (the paper's inverted view).
  /// Entities with zero denominator are skipped.
  [[nodiscard]] RatioStats flowRatios(Entity entity) const;

  // ---- Fig. 6 ------------------------------------------------------------

  struct AnTStats {
    std::vector<double> antShare;  // per app: AnT bytes / total bytes, sorted
    std::vector<double> clShare;   // per app: common-library share, sorted
    double antShareMean = 0.0;
    double clShareMean = 0.0;
    std::size_t antOnlyApps = 0;   // traffic entirely AnT-origin
    std::size_t noAntApps = 0;     // zero AnT traffic (among apps with traffic)
    std::size_t someAntApps = 0;   // nonzero AnT traffic
    std::size_t appsWithTraffic = 0;
    double antMeanFlowRatio = 0.0;  // mean recv/sent across AnT libraries
    double clMeanFlowRatio = 0.0;   // ... across common libraries
  };
  [[nodiscard]] AnTStats antStats() const;

  // ---- Fig. 7 / Fig. 8 ----------------------------------------------------

  /// library category -> mean bytes per origin-library in that category.
  [[nodiscard]] std::map<std::string, double> avgBytesPerLibraryByCategory() const;
  /// domain category -> mean bytes per domain in that category.
  [[nodiscard]] std::map<std::string, double> avgBytesPerDomainByCategory() const;
  /// app category -> mean bytes per app.
  [[nodiscard]] std::map<std::string, double> avgBytesPerAppByCategory() const;

  // ---- Fig. 9 ------------------------------------------------------------

  /// library category -> (domain category -> bytes). Materialized from the
  /// internal id-keyed matrix at query time.
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  libraryDomainHeatmap() const;
  /// Fraction of known-origin (non-built-in, categorized) traffic that
  /// lands on CDN domains — the §IV-E misclassification bound.
  [[nodiscard]] double knownLibraryCdnShare() const;

  // ---- Fig. 10 / §IV-C ----------------------------------------------------

  struct CoverageStats {
    std::vector<double> perApp;  // coverage ratios, sorted ascending
    double mean = 0.0;
    double meanMethodsPerApk = 0.0;
    double fractionAboveMean = 0.0;
  };
  [[nodiscard]] CoverageStats coverageStats() const;

  // ---- concentration (§IV-A "half of the total transfer") -----------------

  struct Concentration {
    std::size_t appsForHalf = 0;
    std::size_t librariesForHalf = 0;
    std::size_t domainsForHalf = 0;
  };
  [[nodiscard]] Concentration concentration() const;

  /// Mean bytes per app run attributed to a library category (cost model
  /// input: e.g. Advertisement bytes per 8-minute run).
  [[nodiscard]] double meanBytesPerRun(const std::string& libCategory) const;

 private:
  struct EntityAgg {
    util::Symbol name;      // into pool_
    util::Symbol category;  // into pool_
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    bool ant = false;
    bool common = false;
    [[nodiscard]] std::uint64_t total() const noexcept { return sent + recv; }
  };
  struct AppAgg {
    std::string category;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    std::uint64_t antBytes = 0;
    std::uint64_t clBytes = 0;
    double coverage = 0.0;
    std::size_t totalMethods = 0;
    [[nodiscard]] std::uint64_t total() const noexcept { return sent + recv; }
  };

  [[nodiscard]] static std::vector<double> sortedTotals(
      const std::vector<std::uint64_t>& values);

  /// Study-scoped pool. Ids are assigned in fold order, which the
  /// StudyAccumulator makes deterministic (dispatch order), so id-keyed
  /// iteration below is deterministic first-appearance order.
  util::SymbolPool pool_;
  std::vector<AppAgg> apps_;
  /// Entity aggregates keyed by the entity name's pool id.
  std::map<std::uint32_t, EntityAgg> libraries_;  // origin-libraries
  std::map<std::uint32_t, EntityAgg> twoLevel_;   // 2-level roll-up
  std::map<std::uint32_t, EntityAgg> domains_;
  /// (app category id, library category id) -> bytes, and
  /// (library category id, domain category id) -> bytes.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      byAppCatLibCat_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> heatmap_;
  UdpStats udp_;
  std::size_t flowCount_ = 0;
  std::uint64_t unattributedBytes_ = 0;
};

/// Thread-safe, order-restoring funnel in front of a StudyAggregator.
///
/// Parallel attribution workers finish out of order, but the aggregated
/// study must be byte-identical to a sequential run (the determinism
/// guarantee the study tests pin down). Workers hand each finished app in
/// under its dispatch index; the accumulator folds the contiguous prefix of
/// indices into the aggregator as soon as it is complete and buffers the
/// rest, so memory stays bounded by worker-count-sized reordering gaps, not
/// the whole study. Failed jobs are skip()ed so they never stall the
/// prefix.
class StudyAccumulator {
 public:
  /// Called, in index order, with each folded app's artifacts — the hook
  /// the orchestrator uses to persist bundles deterministically.
  using FoldHook = std::function<void(RunArtifacts&&)>;

  explicit StudyAccumulator(StudyAggregator& study, FoldHook onFolded = {});

  /// Deliver app `jobIndex`. Thread-safe; folds eagerly when contiguous.
  void add(std::size_t jobIndex, RunArtifacts&& run,
           std::vector<FlowRecord>&& flows);

  /// Mark `jobIndex` as never arriving (failed job). Thread-safe.
  void skip(std::size_t jobIndex);

  /// Fold anything still buffered, in index order, tolerating gaps.
  /// Call once after the worker fleet has joined.
  void finish();

  [[nodiscard]] std::size_t appsFolded() const;
  /// Apps delivered but still waiting for a lower index (0 after finish()).
  [[nodiscard]] std::size_t pendingCount() const;

 private:
  struct PendingApp {
    RunArtifacts run;
    std::vector<FlowRecord> flows;
  };

  /// Fold buffered apps while the next expected index is available.
  /// Requires mutex_ held.
  void drainLocked();

  mutable std::mutex mutex_;
  StudyAggregator& study_;
  FoldHook onFolded_;
  std::size_t next_ = 0;          // lowest index not yet folded or skipped
  std::size_t folded_ = 0;
  std::map<std::size_t, std::optional<PendingApp>> pending_;  // nullopt = skipped
};

}  // namespace libspector::core
