// The §IV analysis pipeline: aggregates attributed flows across a whole
// study into the datasets behind every figure and table of the paper's
// evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/artifacts.hpp"
#include "core/attribution.hpp"
#include "util/symbol.hpp"

namespace libspector::core {

/// Accumulates one study; query methods expose figure-shaped views.
///
/// Entity state is keyed by the ids of a study-scoped util::SymbolPool and
/// stored *densely*: a vector slot per pool id (util::DenseSymbolMap), so
/// the per-flow fold is array probes, not hashing. addApp translates each
/// flow's symbols (owned by whatever attributor produced them) into the
/// aggregator's own pool once per distinct entry; addAppColumns does the
/// same through a per-source-pool dense id translation table, making the
/// whole columnar fold allocation-free after first sight of each string.
/// Both folds write identical state — the row path is the bit-identical
/// reference for the columnar one. Move-only (it owns the pool its ids
/// point into).
class StudyAggregator {
 public:
  StudyAggregator() = default;
  StudyAggregator(StudyAggregator&&) noexcept = default;
  StudyAggregator& operator=(StudyAggregator&&) noexcept = default;

  /// Fold one app's run and attributed flows into the study (row form —
  /// the reference fold).
  void addApp(const RunArtifacts& run, std::span<const FlowRecord> flows);

  /// Batch fold of one app's columnar flow batch: same study state as
  /// addApp over the equivalent rows, byte for byte, but driven by
  /// contiguous id arrays and dense accumulators.
  void addAppColumns(const RunArtifacts& run, const FlowColumns& columns);

  // ---- §IV-A headline numbers -------------------------------------------

  struct Totals {
    std::uint64_t totalBytes = 0;
    std::uint64_t sentBytes = 0;   // device -> servers
    std::uint64_t recvBytes = 0;   // servers -> device
    std::size_t flowCount = 0;
    std::size_t appCount = 0;
    std::size_t originLibraryCount = 0;
    std::size_t twoLevelLibraryCount = 0;
    std::size_t domainCount = 0;
    /// TCP payload no flow covers (context reports lost in flight).
    std::uint64_t unattributedBytes = 0;
  };
  [[nodiscard]] Totals totals() const;

  /// UDP share of total traffic and DNS share of UDP (§III-E), excluding
  /// Libspector's own report datagrams.
  struct UdpStats {
    std::uint64_t udpBytes = 0;      // non-Libspector UDP
    std::uint64_t dnsBytes = 0;
    std::uint64_t reportBytes = 0;   // Libspector UDP reports
    std::uint64_t totalBytes = 0;    // everything in the captures
  };
  [[nodiscard]] const UdpStats& udpStats() const noexcept { return udp_; }

  // ---- Fig. 2 ------------------------------------------------------------

  /// app category -> (library category -> bytes). Materialized from the
  /// internal id-keyed matrix at query time (query methods are cold; the
  /// per-flow fold is the hot path).
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  transferByAppAndLibCategory() const;
  /// library category -> total bytes (the legend percentages).
  [[nodiscard]] std::map<std::string, std::uint64_t> transferByLibCategory() const;

  // ---- Fig. 3 ------------------------------------------------------------

  struct RankedEntry {
    std::string name;
    std::uint64_t bytes = 0;
    std::string category;
  };
  [[nodiscard]] std::vector<RankedEntry> topOriginLibraries(std::size_t n) const;
  [[nodiscard]] std::vector<RankedEntry> topTwoLevelLibraries(std::size_t n) const;

  // ---- Fig. 4 / Fig. 5 ----------------------------------------------------

  enum class Entity { App, Library, Domain };
  /// Per-entity sent (device->server) byte totals, unordered.
  [[nodiscard]] std::vector<double> sentTotals(Entity entity) const;
  [[nodiscard]] std::vector<double> recvTotals(Entity entity) const;

  struct RatioStats {
    std::vector<double> ratios;  // sorted ascending
    double mean = 0.0;
  };
  /// Received/sent per app or library; for domains, bytes the domain's
  /// servers sent over bytes they received (the paper's inverted view).
  /// Entities with zero denominator are skipped.
  [[nodiscard]] RatioStats flowRatios(Entity entity) const;

  // ---- Fig. 6 ------------------------------------------------------------

  struct AnTStats {
    std::vector<double> antShare;  // per app: AnT bytes / total bytes, sorted
    std::vector<double> clShare;   // per app: common-library share, sorted
    double antShareMean = 0.0;
    double clShareMean = 0.0;
    std::size_t antOnlyApps = 0;   // traffic entirely AnT-origin
    std::size_t noAntApps = 0;     // zero AnT traffic (among apps with traffic)
    std::size_t someAntApps = 0;   // nonzero AnT traffic
    std::size_t appsWithTraffic = 0;
    double antMeanFlowRatio = 0.0;  // mean recv/sent across AnT libraries
    double clMeanFlowRatio = 0.0;   // ... across common libraries
  };
  [[nodiscard]] AnTStats antStats() const;

  // ---- Fig. 7 / Fig. 8 ----------------------------------------------------

  /// library category -> mean bytes per origin-library in that category.
  [[nodiscard]] std::map<std::string, double> avgBytesPerLibraryByCategory() const;
  /// domain category -> mean bytes per domain in that category.
  [[nodiscard]] std::map<std::string, double> avgBytesPerDomainByCategory() const;
  /// app category -> mean bytes per app.
  [[nodiscard]] std::map<std::string, double> avgBytesPerAppByCategory() const;

  // ---- Fig. 9 ------------------------------------------------------------

  /// library category -> (domain category -> bytes). Materialized from the
  /// internal id-keyed matrix at query time.
  [[nodiscard]] std::map<std::string, std::map<std::string, std::uint64_t>>
  libraryDomainHeatmap() const;
  /// Fraction of known-origin (non-built-in, categorized) traffic that
  /// lands on CDN domains — the §IV-E misclassification bound.
  [[nodiscard]] double knownLibraryCdnShare() const;

  // ---- Fig. 10 / §IV-C ----------------------------------------------------

  struct CoverageStats {
    std::vector<double> perApp;  // coverage ratios, sorted ascending
    double mean = 0.0;
    double meanMethodsPerApk = 0.0;
    double fractionAboveMean = 0.0;
  };
  [[nodiscard]] CoverageStats coverageStats() const;

  // ---- concentration (§IV-A "half of the total transfer") -----------------

  struct Concentration {
    std::size_t appsForHalf = 0;
    std::size_t librariesForHalf = 0;
    std::size_t domainsForHalf = 0;
  };
  [[nodiscard]] Concentration concentration() const;

  /// Mean bytes per app run attributed to a library category (cost model
  /// input: e.g. Advertisement bytes per 8-minute run).
  [[nodiscard]] double meanBytesPerRun(const std::string& libCategory) const;

  // ---- latency axis (§14, background-sync scenario) -----------------------

  struct LatencyEntry {
    std::string library;
    std::string category;
    std::uint64_t flows = 0;  // flows that measured an RTT
    double meanRttMs = 0.0;
  };
  /// Per origin-library mean capture-derived RTT over the flows that
  /// measured one (FlowRecord::rttMs != 0), descending by mean (ties by
  /// name). Libraries with no measured flow are omitted. Feeds the policy
  /// latency report and bench/fig11_latency_by_library.
  [[nodiscard]] std::vector<LatencyEntry> latencyByLibrary() const;

 private:
  struct EntityAgg {
    util::Symbol name;      // into pool_
    util::Symbol category;  // into pool_
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    /// Latency axis: sum/count over flows whose window measured an RTT.
    /// New fields only — the fold's intern order is pinned by the
    /// row/columnar equivalence, so the axis must not reorder it.
    std::uint64_t rttSumMs = 0;
    std::uint64_t rttFlows = 0;
    bool ant = false;
    bool common = false;
    bool present = false;  // dense tables have untouched slots
    [[nodiscard]] std::uint64_t total() const noexcept { return sent + recv; }
  };
  struct AppAgg {
    std::string category;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    std::uint64_t antBytes = 0;
    std::uint64_t clBytes = 0;
    double coverage = 0.0;
    std::size_t totalMethods = 0;
    [[nodiscard]] std::uint64_t total() const noexcept { return sent + recv; }
  };
  /// One cell of a category x category matrix. `used` (not zero-ness)
  /// drives materialization: the old map-based matrices kept zero-byte
  /// entries, and the rendered CSVs show them.
  struct MatrixCell {
    std::uint64_t bytes = 0;
    std::uint8_t used = 0;
  };

  [[nodiscard]] static std::vector<double> sortedTotals(
      const std::vector<std::uint64_t>& values);

  [[nodiscard]] AppAgg makeAppAgg(const RunArtifacts& run) const;
  EntityAgg& entityAt(util::DenseSymbolMap<EntityAgg>& table,
                      std::size_t& count, util::Symbol name);
  [[nodiscard]] std::uint32_t catSlot(util::Symbol category);
  void growCategoryMatrices();
  void bumpMatrix(std::vector<MatrixCell>& matrix, std::uint32_t a,
                  std::uint32_t b, std::uint64_t bytes);
  /// Per-run tail shared by both folds: UDP/report byte accounting.
  void foldRunPackets(const RunArtifacts& run);

  /// Study-scoped pool. Ids are assigned in fold order, which the
  /// StudyAccumulator makes deterministic (dispatch order), so id-keyed
  /// iteration below is deterministic first-appearance order. Both folds
  /// intern per-flow fields in the same order, so row and columnar studies
  /// assign identical ids.
  util::SymbolPool pool_;
  std::vector<AppAgg> apps_;
  /// Entity aggregates, dense by the entity name's pool id.
  util::DenseSymbolMap<EntityAgg> libraries_;  // origin-libraries
  util::DenseSymbolMap<EntityAgg> twoLevel_;   // 2-level roll-up
  util::DenseSymbolMap<EntityAgg> domains_;
  std::size_t libraryCount_ = 0;
  std::size_t twoLevelCount_ = 0;
  std::size_t domainCount_ = 0;
  /// Category symbols get small dense slot numbers (a study sees a dozen-ish
  /// distinct categories); the two figure matrices are slot x slot arrays
  /// with a shared stride, regrown on the rare new-category event.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  util::DenseSymbolMap<std::uint32_t> catSlotOf_{kNoSlot};  // pool id -> slot
  std::vector<util::Symbol> catSlots_;                      // slot -> symbol
  std::size_t catStride_ = 0;
  std::vector<MatrixCell> byAppCatLibCat_;  // [appCat slot][libCat slot]
  std::vector<MatrixCell> heatmap_;         // [libCat slot][domainCat slot]
  /// Foreign pool id -> local symbol, one dense table per source pool
  /// (normally exactly one: the study's attributor).
  std::unordered_map<const util::SymbolPool*, std::vector<util::Symbol>>
      columnXlat_;
  UdpStats udp_;
  std::size_t flowCount_ = 0;
  std::uint64_t unattributedBytes_ = 0;
};

/// Thread-safe, order-restoring funnel in front of a StudyAggregator.
///
/// Parallel attribution workers finish out of order, but the aggregated
/// study must be byte-identical to a sequential run (the determinism
/// guarantee the study tests pin down). Workers hand each finished app in
/// under its dispatch index; the accumulator folds the contiguous prefix of
/// indices into the aggregator as soon as it is complete and buffers the
/// rest, so memory stays bounded by worker-count-sized reordering gaps, not
/// the whole study. Failed jobs are skip()ed so they never stall the
/// prefix.
class StudyAccumulator {
 public:
  /// Called, in index order, with each folded app's artifacts — the hook
  /// the orchestrator uses to persist bundles deterministically.
  using FoldHook = std::function<void(RunArtifacts&&)>;

  explicit StudyAccumulator(StudyAggregator& study, FoldHook onFolded = {});

  /// Deliver app `jobIndex`. Thread-safe; folds eagerly when contiguous.
  void add(std::size_t jobIndex, RunArtifacts&& run,
           std::vector<FlowRecord>&& flows);

  /// Deliver app `jobIndex` as a columnar batch (folded through
  /// StudyAggregator::addAppColumns). Mixing add and addColumns across jobs
  /// is fine — both folds write identical study state.
  void addColumns(std::size_t jobIndex, RunArtifacts&& run,
                  FlowColumns&& columns);

  /// Mark `jobIndex` as never arriving (failed job). Thread-safe.
  void skip(std::size_t jobIndex);

  /// Fold anything still buffered, in index order, tolerating gaps.
  /// Call once after the worker fleet has joined.
  void finish();

  [[nodiscard]] std::size_t appsFolded() const;
  /// Apps delivered but still waiting for a lower index (0 after finish()).
  [[nodiscard]] std::size_t pendingCount() const;

 private:
  struct PendingApp {
    RunArtifacts run;
    std::vector<FlowRecord> flows;
    FlowColumns columns;
    bool columnar = false;
  };

  /// Fold one buffered app through the matching aggregator entry point.
  void foldLocked(PendingApp&& app);

  /// Fold buffered apps while the next expected index is available.
  /// Requires mutex_ held.
  void drainLocked();

  mutable std::mutex mutex_;
  StudyAggregator& study_;
  FoldHook onFolded_;
  std::size_t next_ = 0;          // lowest index not yet folded or skipped
  std::size_t folded_ = 0;
  std::map<std::size_t, std::optional<PendingApp>> pending_;  // nullopt = skipped
};

}  // namespace libspector::core
