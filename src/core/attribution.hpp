// Traffic attribution (paper §III-C, §III-E, Listing 1).
//
// Joins each UDP context report with its TCP stream in the packet capture
// (by socket pair and connection window), computes per-direction transfer
// volume, finds the *origin* of the socket — the chronologically first
// method in the stack trace that does not belong to Android's built-in
// packages — and derives the origin-library, its 2-level roll-up, the
// LibRadar category, and the destination domain's generic category.
#pragma once

#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/artifacts.hpp"
#include "core/attribution_program.hpp"
#include "net/ip.hpp"
#include "radar/ant.hpp"
#include "radar/corpus.hpp"
#include "util/clock.hpp"
#include "util/symbol.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::core {

/// Built-in package filter (paper footnote 2, plus the com.android.* frames
/// Listing 1 shows being eliminated as internal API calls).
[[nodiscard]] bool isBuiltinFrame(std::string_view frameOrSignature);

/// The footnote-2 filter list itself (hierarchical package prefixes) — the
/// compilation input for AttributionProgram and the reference set for its
/// differential tests.
[[nodiscard]] std::span<const std::string_view> builtinFramePrefixes() noexcept;

/// Normalize a report entry (smali signature or dotted frame name) to its
/// dotted frame name.
[[nodiscard]] std::string frameNameOf(std::string_view entry);

/// Package of a report entry ("com.unity3d.ads.android.cache" for the
/// Listing 1 origin frame).
[[nodiscard]] std::string packageOfEntry(std::string_view entry);

/// True when the entry's package is a laundering "junk" package: it has at
/// least one component and every dot-separated component is at most two
/// characters ("a.b.c.Gen.run"). Real SDK packages always carry a longer
/// component ("com", "org", "unity3d", ...), so the rule never fires on an
/// honest stack. Reference matcher for AttributionProgram::isJunkPackageEntry.
[[nodiscard]] bool isJunkPackageFrame(std::string_view entry);

/// True when the entry is one of the reflection trampoline markers
/// (rt::kReflectMethodInvokeFrame / rt::kReflectProxyInvokeFrame).
[[nodiscard]] bool isReflectionMarkerFrame(std::string_view entry);

/// True when `stackSignatures[i]` should be elided as a laundering
/// trampoline (DESIGN.md §14): its package is junk, or its inward
/// neighbour — its direct callee, at i - 1 in the innermost-first list —
/// is a reflection marker, meaning the frame is a dispatcher that only
/// bounced the request through Method/Proxy.invoke; the reflection target
/// past the marker is the genuine origin.
[[nodiscard]] bool isTrampolineFrame(
    std::span<const std::string> stackSignatures, std::size_t i);

/// Index (into the innermost-first list) of the origin frame: the
/// chronologically first non-built-in method, i.e. the outermost surviving
/// frame. std::nullopt when every frame is built-in. With
/// `elideTrampolines`, laundering trampoline frames (see isTrampolineFrame)
/// are skipped as well — a fixed point on un-laundered stacks.
[[nodiscard]] std::optional<std::size_t> originFrameIndex(
    std::span<const std::string> stackSignatures, bool elideTrampolines = false);

/// One attributed flow: a socket, its volume, and its origin context.
///
/// The string-ish fields are interned util::Symbols — trivially copyable
/// handles into the pool of the TrafficAttributor that produced the flow
/// (or whatever pool a test interned them in). A study of millions of flows
/// repeats the same few hundred strings; symbols make a FlowRecord
/// allocation-free to build and copy. Flows must not outlive their pool
/// (the attributor outlives the aggregation that consumes its flows — see
/// DESIGN.md §10).
struct FlowRecord {
  util::Symbol apkSha256;
  util::Symbol appPackage;
  util::Symbol appCategory;

  /// Origin-library package; "*-<domainCategory>" when the whole stack was
  /// built-in code (Fig. 3's "*-Advertisement" convention).
  util::Symbol originLibrary;
  util::Symbol originSignature;  // empty for built-in origins
  util::Symbol twoLevelLibrary;
  util::Symbol libraryCategory;  // one of radar::libraryCategories()
  bool builtinOrigin = false;
  bool antOrigin = false;     // origin-library in the AnT list
  bool commonOrigin = false;  // origin-library in the common-library list

  util::Symbol domain;          // "" when no DNS resolution preceded the flow
  util::Symbol domainCategory;  // one of vtsim::genericCategories()

  net::SocketPair socketPair;
  util::SimTimeMs connectTimeMs = 0;
  std::uint64_t sentBytes = 0;  // device -> server, wire bytes
  std::uint64_t recvBytes = 0;  // server -> device, wire bytes

  /// Logical request ordinal on the carrying socket: 0 for the request
  /// that opened the connection (every report outside the keep-alive
  /// scenario), >= 1 for keep-alive reuse. Mirrors UdpReport.
  std::uint32_t requestOrdinal = 0;
  /// Capture-derived latency estimate (§14): gap between the first packet
  /// the device sent in this flow's window and the first packet it got
  /// back. 0 when either direction never transferred in the window.
  util::SimTimeMs rttMs = 0;
};

/// One app run's attributed flows in columnar (SoA) form: every FlowRecord
/// symbol field becomes a parallel vector of its dense pool id, the three
/// origin booleans pack into one flags byte, and the numeric fields keep
/// their own vectors. Same information, same order as the row form —
/// row(i) reconstructs flows[i] exactly — but shaped for batch folds:
/// aggregation walks contiguous u32/u64 arrays and indexes dense
/// per-symbol-id accumulators instead of hashing per flow.
///
/// Ids are meaningful only against `pool` (the producing attributor's
/// pool); like FlowRecords, columns must not outlive it.
struct FlowColumns {
  static constexpr std::uint8_t kBuiltinOrigin = 1;
  static constexpr std::uint8_t kAntOrigin = 2;
  static constexpr std::uint8_t kCommonOrigin = 4;

  const util::SymbolPool* pool = nullptr;

  std::vector<std::uint32_t> apkSha256;
  std::vector<std::uint32_t> appPackage;
  std::vector<std::uint32_t> appCategory;
  std::vector<std::uint32_t> originLibrary;
  std::vector<std::uint32_t> originSignature;  // Symbol::kNoId for built-in
  std::vector<std::uint32_t> twoLevelLibrary;
  std::vector<std::uint32_t> libraryCategory;
  std::vector<std::uint32_t> domain;
  std::vector<std::uint32_t> domainCategory;
  std::vector<std::uint8_t> flags;  // kBuiltinOrigin | kAntOrigin | kCommonOrigin
  std::vector<std::uint64_t> sentBytes;
  std::vector<std::uint64_t> recvBytes;
  std::vector<net::SocketPair> socketPair;
  std::vector<util::SimTimeMs> connectTimeMs;
  std::vector<std::uint32_t> requestOrdinal;
  std::vector<util::SimTimeMs> rttMs;

  [[nodiscard]] std::size_t size() const noexcept { return flags.size(); }
  void reserve(std::size_t n);
  void push(const FlowRecord& flow);
  /// Reconstruct row `i` (ids resolved through `pool`).
  [[nodiscard]] FlowRecord row(std::size_t i) const;
  /// Columnarize a row batch; the result references `pool`.
  [[nodiscard]] static FlowColumns fromRows(std::span<const FlowRecord> flows,
                                            const util::SymbolPool& pool);
};

struct AttributorConfig {
  /// How far before the report timestamp the connection's handshake packets
  /// may lie (the post-hook fires after establishment).
  util::SimTimeMs connectSlackMs = 2000;
  /// Build a net::CaptureIndex once per run and answer every stream-volume
  /// query from it (O(log P)) instead of scanning the whole capture per
  /// flow (O(P)). Off reproduces the naive scan bit-for-bit; it exists for
  /// the equivalence tests and the attribution_throughput bench.
  bool useCaptureIndex = true;
  /// Memoize signature parsing, the built-in-frame filter, and the derived
  /// origin-library fields across the frames of a run (stack traces repeat
  /// the same frames heavily). Purely an allocation/CPU saver; results are
  /// identical either way.
  bool memoizeFrames = true;
  /// Share the per-frame derivation cache *across runs*, keyed by interned
  /// signature id (a shared_mutex-guarded map of immutable entries). The
  /// same SDK stacks recur in every app of a study, so the cross-run cache
  /// makes signature parsing and corpus prediction a once-per-study cost.
  /// Off falls back to the per-call memo above. Results are identical
  /// either way (the byte-identity tests pin this); flows reference the
  /// attributor's symbol pool in both modes.
  bool internSymbols = true;
  /// Compile the builtin filter, AnT/common lists and corpus elections into
  /// one AttributionProgram at construction, so every per-frame question is
  /// a single component-trie walk (array probes over interned component
  /// ids) instead of four independent string-prefix walks. Off falls back
  /// to the reference matchers; results are identical either way.
  bool compileProgram = true;
  /// Produce FlowColumns batches and fold them through the columnar
  /// StudyAggregator entry points (dense id-indexed accumulators). Off
  /// keeps the row-at-a-time FlowRecord fold as the bit-identical
  /// reference; the study tests pin both paths to the same bytes.
  bool columnarFold = true;
  /// Elide stack-laundering trampoline frames (junk packages and
  /// reflection-invoked frames, DESIGN.md §14) before electing the origin.
  /// Honest stacks contain neither, so the pass is a fixed point on them —
  /// the default-on setting leaves the legacy corpus byte-identical (pinned
  /// by the scenario-conformance tier) while restoring correct attribution
  /// for adversarial apps. Off keeps the raw footnote-2 scan.
  bool elideTrampolines = true;
};

class TrafficAttributor {
 public:
  TrafficAttributor(const radar::LibraryCorpus& corpus,
                    vtsim::DomainCategorizer& domains,
                    AttributorConfig config = {});

  /// Attribute every reported socket of one app run. Thread-safe: parallel
  /// workers share one attributor (the pool and frame cache are internally
  /// synchronized).
  [[nodiscard]] std::vector<FlowRecord> attribute(const RunArtifacts& run) const;

  /// attribute() in columnar form: same flows, same order, as a FlowColumns
  /// batch referencing this attributor's pool. Thread-safe like attribute().
  [[nodiscard]] FlowColumns attributeColumns(const RunArtifacts& run) const;

  /// The pool backing every Symbol in the flows this attributor returns.
  /// Flows are valid only while the attributor (and thus the pool) lives.
  [[nodiscard]] const util::SymbolPool& symbols() const noexcept {
    return *pool_;
  }

 public:
  /// TCP payload bytes in the capture that no attributed flow covers —
  /// the blind spot left by lost UDP context reports (the supervisor's
  /// channel is best-effort). Lower-bounds the coverage of the attribution.
  [[nodiscard]] static std::uint64_t unattributedTcpPayload(
      const RunArtifacts& run, std::span<const FlowRecord> flows);

 private:
  /// Everything attribution derives from one distinct stack frame.
  /// Immutable after insertion into the cross-run cache.
  struct FrameInfo {
    bool builtin = false;
    util::Symbol originLibrary;
    util::Symbol twoLevelLibrary;
    util::Symbol libraryCategory;
    /// The interned raw signature (internSymbols path only), so an origin
    /// frame is interned once, not re-interned per field it feeds.
    util::Symbol signature;
    bool ant = false;
    bool common = false;
    /// Trampoline-elision inputs (config_.elideTrampolines): junk package
    /// and reflection-marker status of this frame (the marker flags the
    /// *inward* neighbour for elision).
    bool junkPackage = false;
    bool reflectMarker = false;
  };

  [[nodiscard]] FrameInfo computeFrameInfo(std::string_view signature) const;
  /// Cross-run cache lookup (config_.internSymbols path).
  [[nodiscard]] const FrameInfo& sharedFrameInfo(util::Symbol signature) const;

  const radar::LibraryCorpus& corpus_;
  vtsim::DomainCategorizer& domains_;
  AttributorConfig config_;
  /// Compiled once at construction (config_.compileProgram); immutable and
  /// shared lock-free by all worker threads. Null when disabled.
  std::unique_ptr<const AttributionProgram> program_;
  /// Owns every Symbol handed out in FlowRecords. Behind a unique_ptr so
  /// the attributor stays movable and flow symbols survive the move.
  std::unique_ptr<util::SymbolPool> pool_;
  mutable std::shared_mutex frameMutex_;
  /// Keyed by interned signature id; values are heap-stable (node-based
  /// map) and immutable once inserted, so readers can hold references
  /// outside the lock.
  mutable std::unordered_map<std::uint32_t, FrameInfo> frameCache_;
};

}  // namespace libspector::core
