// Traffic attribution (paper §III-C, §III-E, Listing 1).
//
// Joins each UDP context report with its TCP stream in the packet capture
// (by socket pair and connection window), computes per-direction transfer
// volume, finds the *origin* of the socket — the chronologically first
// method in the stack trace that does not belong to Android's built-in
// packages — and derives the origin-library, its 2-level roll-up, the
// LibRadar category, and the destination domain's generic category.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifacts.hpp"
#include "net/ip.hpp"
#include "radar/ant.hpp"
#include "radar/corpus.hpp"
#include "util/clock.hpp"
#include "vtsim/categorizer.hpp"

namespace libspector::core {

/// Built-in package filter (paper footnote 2, plus the com.android.* frames
/// Listing 1 shows being eliminated as internal API calls).
[[nodiscard]] bool isBuiltinFrame(std::string_view frameOrSignature);

/// Normalize a report entry (smali signature or dotted frame name) to its
/// dotted frame name.
[[nodiscard]] std::string frameNameOf(const std::string& entry);

/// Package of a report entry ("com.unity3d.ads.android.cache" for the
/// Listing 1 origin frame).
[[nodiscard]] std::string packageOfEntry(const std::string& entry);

/// Index (into the innermost-first list) of the origin frame: the
/// chronologically first non-built-in method, i.e. the outermost surviving
/// frame. std::nullopt when every frame is built-in.
[[nodiscard]] std::optional<std::size_t> originFrameIndex(
    std::span<const std::string> stackSignatures);

/// One attributed flow: a socket, its volume, and its origin context.
struct FlowRecord {
  std::string apkSha256;
  std::string appPackage;
  std::string appCategory;

  /// Origin-library package; "*-<domainCategory>" when the whole stack was
  /// built-in code (Fig. 3's "*-Advertisement" convention).
  std::string originLibrary;
  std::string originSignature;  // empty for built-in origins
  std::string twoLevelLibrary;
  std::string libraryCategory;  // one of radar::libraryCategories()
  bool builtinOrigin = false;
  bool antOrigin = false;     // origin-library in the AnT list
  bool commonOrigin = false;  // origin-library in the common-library list

  std::string domain;          // "" when no DNS resolution preceded the flow
  std::string domainCategory;  // one of vtsim::genericCategories()

  net::SocketPair socketPair;
  util::SimTimeMs connectTimeMs = 0;
  std::uint64_t sentBytes = 0;  // device -> server, wire bytes
  std::uint64_t recvBytes = 0;  // server -> device, wire bytes
};

struct AttributorConfig {
  /// How far before the report timestamp the connection's handshake packets
  /// may lie (the post-hook fires after establishment).
  util::SimTimeMs connectSlackMs = 2000;
  /// Build a net::CaptureIndex once per run and answer every stream-volume
  /// query from it (O(log P)) instead of scanning the whole capture per
  /// flow (O(P)). Off reproduces the naive scan bit-for-bit; it exists for
  /// the equivalence tests and the attribution_throughput bench.
  bool useCaptureIndex = true;
  /// Memoize signature parsing, the built-in-frame filter, and the derived
  /// origin-library fields across the frames of a run (stack traces repeat
  /// the same frames heavily). Purely an allocation/CPU saver; results are
  /// identical either way.
  bool memoizeFrames = true;
};

class TrafficAttributor {
 public:
  TrafficAttributor(const radar::LibraryCorpus& corpus,
                    vtsim::DomainCategorizer& domains,
                    AttributorConfig config = {});

  /// Attribute every reported socket of one app run.
  [[nodiscard]] std::vector<FlowRecord> attribute(const RunArtifacts& run) const;

 public:
  /// TCP payload bytes in the capture that no attributed flow covers —
  /// the blind spot left by lost UDP context reports (the supervisor's
  /// channel is best-effort). Lower-bounds the coverage of the attribution.
  [[nodiscard]] static std::uint64_t unattributedTcpPayload(
      const RunArtifacts& run, std::span<const FlowRecord> flows);

 private:
  const radar::LibraryCorpus& corpus_;
  vtsim::DomainCategorizer& domains_;
  AttributorConfig config_;
};

}  // namespace libspector::core
