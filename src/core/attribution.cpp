#include "core/attribution.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <unordered_map>

#include "dex/type_signature.hpp"
#include "util/strings.hpp"

namespace libspector::core {

namespace {

// Footnote 2's filter list, expressed as hierarchical package prefixes.
// com.android.okhttp is the platform's bundled HTTP stack (the Listing 1
// frames eliminated as internal API calls); com.android.volley is NOT
// filtered — apps bundle it themselves and Fig. 3 lists it as a top
// origin-library.
constexpr std::array<std::string_view, 14> kBuiltinPrefixes = {
    "android",
    "com.android.okhttp",
    "com.android.org.conscrypt",
    "com.android.webview",
    "dalvik",
    "java",
    "javax",
    "junit",
    "org.apache.http",
    "org.json",
    "org.w3c.dom",
    "org.xml.sax",
    "org.xmlpull.v1",
    "sun",
};

}  // namespace

std::string frameNameOf(std::string_view entry) {
  if (const auto sig = dex::parseSignatureView(entry)) {
    std::string out;
    out.reserve(sig->slashedClass.size() + 1 + sig->methodName.size());
    for (const char c : sig->slashedClass) out += c == '/' ? '.' : c;
    out += '.';
    out += sig->methodName;
    return out;
  }
  return std::string(entry);
}

std::string packageOfEntry(std::string_view entry) {
  if (const auto sig = dex::parseSignatureView(entry)) {
    const std::size_t lastSlash = sig->slashedClass.rfind('/');
    if (lastSlash == std::string_view::npos) return {};
    std::string out(sig->slashedClass.substr(0, lastSlash));
    for (char& c : out)
      if (c == '/') c = '.';
    return out;
  }
  return dex::packageOfFrameName(entry);
}

bool isBuiltinFrame(std::string_view frameOrSignature) {
  // Signatures are filtered directly against their slashed class part —
  // no dotted frame name is ever materialized on this path.
  if (const auto sig = dex::parseSignatureView(frameOrSignature)) {
    for (const auto prefix : kBuiltinPrefixes) {
      if (util::isHierarchicalPrefixOfSlashedFrame(prefix, sig->slashedClass,
                                                   sig->methodName))
        return true;
    }
    return false;
  }
  for (const auto prefix : kBuiltinPrefixes) {
    if (util::isHierarchicalPrefix(prefix, frameOrSignature)) return true;
  }
  return false;
}

std::optional<std::size_t> originFrameIndex(
    std::span<const std::string> stackSignatures) {
  // Innermost-first list: the chronologically first call is the outermost
  // frame, so scan from the back and return the first non-built-in frame.
  for (std::size_t i = stackSignatures.size(); i-- > 0;) {
    if (!isBuiltinFrame(stackSignatures[i])) return i;
  }
  return std::nullopt;
}

TrafficAttributor::TrafficAttributor(const radar::LibraryCorpus& corpus,
                                     vtsim::DomainCategorizer& domains,
                                     AttributorConfig config)
    : corpus_(corpus),
      domains_(domains),
      config_(config),
      pool_(std::make_unique<util::SymbolPool>()) {}

TrafficAttributor::FrameInfo TrafficAttributor::computeFrameInfo(
    std::string_view signature) const {
  FrameInfo info;
  info.builtin = isBuiltinFrame(signature);
  std::string originLibrary = packageOfEntry(signature);
  if (originLibrary.empty()) originLibrary = frameNameOf(signature);
  info.originLibrary = pool_->intern(originLibrary);
  info.twoLevelLibrary = pool_->intern(util::prefixLevels(originLibrary, 2));
  info.libraryCategory =
      pool_->intern(corpus_.predictCategory(originLibrary).category);
  info.ant = radar::antLibraries().matches(originLibrary);
  info.common = radar::commonLibraries().matches(originLibrary);
  return info;
}

const TrafficAttributor::FrameInfo& TrafficAttributor::sharedFrameInfo(
    util::Symbol signature) const {
  {
    const std::shared_lock lock(frameMutex_);
    const auto it = frameCache_.find(signature.id());
    if (it != frameCache_.end()) return it->second;
  }
  // Compute outside the exclusive section (corpus prediction is the pricey
  // part); a losing racer's identical entry is simply discarded.
  FrameInfo info = computeFrameInfo(signature.view());
  const std::unique_lock lock(frameMutex_);
  return frameCache_.try_emplace(signature.id(), info).first->second;
}

std::vector<FlowRecord> TrafficAttributor::attribute(
    const RunArtifacts& run) const {
  // 1. IP -> (time, domain) table from the DNS responses in the capture,
  //    so each flow maps to the domain resolved most recently before it.
  std::unordered_map<net::Ipv4Addr, std::vector<std::pair<util::SimTimeMs, std::string>>>
      dnsByIp;
  for (const auto& pkt : run.capture.packets()) {
    if (pkt.proto != net::Proto::Udp || !pkt.isDns()) continue;
    if (pkt.dnsAnswer == net::Ipv4Addr{}) continue;  // query or NXDOMAIN
    dnsByIp[pkt.dnsAnswer].emplace_back(pkt.timestampMs, pkt.dnsQname);
  }
  for (auto& [ip, entries] : dnsByIp)
    std::sort(entries.begin(), entries.end());

  const auto domainFor = [&](net::Ipv4Addr ip,
                             util::SimTimeMs when) -> std::string {
    const auto it = dnsByIp.find(ip);
    if (it == dnsByIp.end()) return {};
    std::string best;
    for (const auto& [ts, domain] : it->second) {
      if (ts > when) break;
      best = domain;
    }
    // A resolution can postdate the report stamp by the handshake RTT.
    if (best.empty() && !it->second.empty()) best = it->second.front().second;
    return best;
  };

  // 1b. HTTP Host headers dissected from the capture are authoritative for
  //     their socket: on co-hosted addresses (CDNs) DNS correlation alone
  //     is ambiguous, exactly the confusion the paper attributes to CDNs.
  std::unordered_map<net::SocketPair,
                     std::vector<std::pair<util::SimTimeMs, std::string>>>
      hostByPair;
  for (const auto& exchange : run.capture.httpExchanges())
    hostByPair[exchange.pair].emplace_back(exchange.timestampMs, exchange.host);
  // hostFor picks the first in-window exchange assuming chronological
  // order, which the DPI pass does not guarantee (it emits per stream, and
  // streams interleave) — sort, or a late exchange can shadow the one that
  // actually opened the window.
  for (auto& [pair, entries] : hostByPair)
    std::sort(entries.begin(), entries.end());

  const auto hostFor = [&](const net::SocketPair& pair, util::SimTimeMs from,
                           util::SimTimeMs to) -> std::string {
    const auto it = hostByPair.find(pair);
    if (it == hostByPair.end()) return {};
    for (const auto& [ts, host] : it->second) {
      if (ts > to) break;
      if (ts >= from) return host;
    }
    return {};
  };

  // 1c. Index the capture once: every flow below queries its stream volume
  //     in O(log P) instead of rescanning all P packets (the old
  //     O(flows x packets) hot spot of the offline stage).
  std::optional<net::CaptureIndex> captureIndex;
  if (config_.useCaptureIndex) captureIndex.emplace(run.capture);
  const auto volumeFor = [&](const net::SocketPair& pair, util::SimTimeMs from,
                             util::SimTimeMs to) {
    return captureIndex ? captureIndex->streamVolume(pair, from, to)
                        : run.capture.streamVolume(pair, from, to);
  };

  // 1d. Per-frame derivation caching. With internSymbols the cache is the
  //     attributor-lifetime frameCache_ keyed by interned signature id —
  //     the same SDK stacks recur in every app, so parsing and corpus
  //     prediction happen once per study. Without it, fall back to per-call
  //     memos keyed by views into run.reports (which outlives this call),
  //     exactly the pre-interning behavior.
  std::unordered_map<std::string_view, bool> builtinMemo;
  std::unordered_map<std::string_view, FrameInfo> originMemo;

  const auto isBuiltinOf = [&](const std::string& frame) -> bool {
    if (config_.internSymbols)
      return sharedFrameInfo(pool_->intern(frame)).builtin;
    if (!config_.memoizeFrames) return isBuiltinFrame(frame);
    const auto [it, inserted] = builtinMemo.try_emplace(frame, false);
    if (inserted) it->second = isBuiltinFrame(frame);
    return it->second;
  };
  const auto originIndexOf =
      [&](std::span<const std::string> stack) -> std::optional<std::size_t> {
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (!isBuiltinOf(stack[i])) return i;
    }
    return std::nullopt;
  };
  const auto originInfoFor = [&](const std::string& signature) -> FrameInfo {
    if (config_.internSymbols)
      return sharedFrameInfo(pool_->intern(signature));
    if (!config_.memoizeFrames) return computeFrameInfo(signature);
    const auto [it, inserted] = originMemo.try_emplace(signature);
    if (inserted) it->second = computeFrameInfo(signature);
    return it->second;
  };

  // 2. Connection windows: reports sharing a socket pair (ephemeral port
  //    reuse) are disambiguated chronologically — each report owns the
  //    window from just before its connect until the next same-pair report.
  std::map<net::SocketPair, std::vector<std::size_t>> reportsByPair;
  for (std::size_t i = 0; i < run.reports.size(); ++i)
    reportsByPair[run.reports[i].socketPair].push_back(i);
  for (auto& [pair, indices] : reportsByPair) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return run.reports[a].timestampMs < run.reports[b].timestampMs;
    });
  }

  std::vector<FlowRecord> flows;
  flows.reserve(run.reports.size());

  // Per-run constants interned once, not once per flow.
  const util::Symbol apkSym = pool_->intern(run.apkSha256);
  const util::Symbol packageSym = pool_->intern(run.packageName);
  const util::Symbol appCategorySym = pool_->intern(run.appCategory);
  const util::Symbol unknownDomainCategorySym =
      pool_->intern(vtsim::kUnknownDomainCategory);
  const util::Symbol unknownLibraryCategorySym =
      pool_->intern(radar::kUnknownCategory);

  for (const auto& [pair, indices] : reportsByPair) {
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const UdpReport& report = run.reports[indices[k]];
      const util::SimTimeMs from =
          report.timestampMs > config_.connectSlackMs
              ? report.timestampMs - config_.connectSlackMs
              : 0;
      const util::SimTimeMs to =
          k + 1 < indices.size()
              ? run.reports[indices[k + 1]].timestampMs - 1
              : std::numeric_limits<util::SimTimeMs>::max();

      const auto volume = volumeFor(pair, from, to);

      FlowRecord flow;
      flow.apkSha256 = apkSym;
      flow.appPackage = packageSym;
      flow.appCategory = appCategorySym;
      flow.socketPair = pair;
      flow.connectTimeMs = report.timestampMs;
      // Data transfer means payload: header-only segments (SYN/ACK/FIN)
      // carry no app data and would otherwise put an artificial ceiling on
      // the receive/send ratios of download-heavy flows.
      flow.sentBytes = volume.payloadFromSrc;
      flow.recvBytes = volume.payloadFromDst;

      std::string domain = hostFor(pair, from, to);
      if (domain.empty()) domain = domainFor(pair.dst.ip, report.timestampMs);
      flow.domainCategory =
          domain.empty() ? unknownDomainCategorySym
                         : pool_->intern(domains_.categorize(domain).category);
      flow.domain = pool_->intern(domain);

      const auto origin = originIndexOf(report.stackSignatures);
      if (origin) {
        flow.originSignature = pool_->intern(report.stackSignatures[*origin]);
        const FrameInfo info = originInfoFor(report.stackSignatures[*origin]);
        flow.originLibrary = info.originLibrary;
        flow.twoLevelLibrary = info.twoLevelLibrary;
        flow.libraryCategory = info.libraryCategory;
        flow.antOrigin = info.ant;
        flow.commonOrigin = info.common;
      } else {
        flow.builtinOrigin = true;
        std::string star = "*-";
        star.append(flow.domainCategory.view());
        flow.originLibrary = pool_->intern(star);
        flow.twoLevelLibrary = flow.originLibrary;
        flow.libraryCategory = unknownLibraryCategorySym;
      }

      flows.push_back(flow);
    }
  }

  // Keep report order stable for callers (reportsByPair reordered them).
  std::sort(flows.begin(), flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.connectTimeMs < b.connectTimeMs;
            });
  return flows;
}

std::uint64_t TrafficAttributor::unattributedTcpPayload(
    const RunArtifacts& run, std::span<const FlowRecord> flows) {
  // The capture maintains this sum incrementally on append; re-deriving it
  // here was a full packet scan per run.
  const std::uint64_t totalTcpPayload = run.capture.totalTcpPayloadBytes();
  std::uint64_t attributed = 0;
  for (const auto& flow : flows) attributed += flow.sentBytes + flow.recvBytes;
  return attributed >= totalTcpPayload ? 0 : totalTcpPayload - attributed;
}

}  // namespace libspector::core
