#include "core/attribution.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <span>
#include <unordered_map>

#include "dex/type_signature.hpp"
#include "rt/framework.hpp"
#include "util/strings.hpp"

namespace libspector::core {

namespace {

// Footnote 2's filter list, expressed as hierarchical package prefixes.
// com.android.okhttp is the platform's bundled HTTP stack (the Listing 1
// frames eliminated as internal API calls); com.android.volley is NOT
// filtered — apps bundle it themselves and Fig. 3 lists it as a top
// origin-library.
constexpr std::array<std::string_view, 14> kBuiltinPrefixes = {
    "android",
    "com.android.okhttp",
    "com.android.org.conscrypt",
    "com.android.webview",
    "dalvik",
    "java",
    "javax",
    "junit",
    "org.apache.http",
    "org.json",
    "org.w3c.dom",
    "org.xml.sax",
    "org.xmlpull.v1",
    "sun",
};

}  // namespace

std::span<const std::string_view> builtinFramePrefixes() noexcept {
  return kBuiltinPrefixes;
}

std::string frameNameOf(std::string_view entry) {
  if (const auto sig = dex::parseSignatureView(entry)) {
    std::string out;
    out.reserve(sig->slashedClass.size() + 1 + sig->methodName.size());
    for (const char c : sig->slashedClass) out += c == '/' ? '.' : c;
    out += '.';
    out += sig->methodName;
    return out;
  }
  return std::string(entry);
}

std::string packageOfEntry(std::string_view entry) {
  if (const auto sig = dex::parseSignatureView(entry)) {
    const std::size_t lastSlash = sig->slashedClass.rfind('/');
    if (lastSlash == std::string_view::npos) return {};
    std::string out(sig->slashedClass.substr(0, lastSlash));
    for (char& c : out)
      if (c == '/') c = '.';
    return out;
  }
  return dex::packageOfFrameName(entry);
}

bool isBuiltinFrame(std::string_view frameOrSignature) {
  // Signatures are filtered directly against their slashed class part —
  // no dotted frame name is ever materialized on this path.
  if (const auto sig = dex::parseSignatureView(frameOrSignature)) {
    for (const auto prefix : kBuiltinPrefixes) {
      if (util::isHierarchicalPrefixOfSlashedFrame(prefix, sig->slashedClass,
                                                   sig->methodName))
        return true;
    }
    return false;
  }
  for (const auto prefix : kBuiltinPrefixes) {
    if (util::isHierarchicalPrefix(prefix, frameOrSignature)) return true;
  }
  return false;
}

bool isJunkPackageFrame(std::string_view entry) {
  const std::string package = packageOfEntry(entry);
  if (package.empty()) return false;
  std::size_t componentLength = 0;
  for (const char c : package) {
    if (c == '.') {
      if (componentLength > 2) return false;
      componentLength = 0;
    } else {
      ++componentLength;
    }
  }
  return componentLength <= 2;
}

bool isReflectionMarkerFrame(std::string_view entry) {
  return entry == rt::kReflectMethodInvokeFrame ||
         entry == rt::kReflectProxyInvokeFrame;
}

bool isTrampolineFrame(std::span<const std::string> stackSignatures,
                       std::size_t i) {
  if (isJunkPackageFrame(stackSignatures[i])) return true;
  // Innermost-first list: frame i called whatever sits at i - 1. A frame
  // whose direct callee is Method/Proxy.invoke is a dispatch trampoline —
  // it only exists to bounce the request into the reflection target, which
  // is the genuine logic and sits further *in* (past the marker).
  return i >= 1 && isReflectionMarkerFrame(stackSignatures[i - 1]);
}

std::optional<std::size_t> originFrameIndex(
    std::span<const std::string> stackSignatures, bool elideTrampolines) {
  // Innermost-first list: the chronologically first call is the outermost
  // frame, so scan from the back and return the first non-built-in frame.
  for (std::size_t i = stackSignatures.size(); i-- > 0;) {
    if (isBuiltinFrame(stackSignatures[i])) continue;
    if (elideTrampolines && isTrampolineFrame(stackSignatures, i)) continue;
    return i;
  }
  return std::nullopt;
}

TrafficAttributor::TrafficAttributor(const radar::LibraryCorpus& corpus,
                                     vtsim::DomainCategorizer& domains,
                                     AttributorConfig config)
    : corpus_(corpus),
      domains_(domains),
      config_(config),
      program_(config.compileProgram
                   ? std::make_unique<const AttributionProgram>(
                         corpus, builtinFramePrefixes(), radar::antLibraries(),
                         radar::commonLibraries())
                   : nullptr),
      pool_(std::make_unique<util::SymbolPool>()) {}

TrafficAttributor::FrameInfo TrafficAttributor::computeFrameInfo(
    std::string_view signature) const {
  FrameInfo info;
  std::string originLibrary = packageOfEntry(signature);
  if (originLibrary.empty()) originLibrary = frameNameOf(signature);
  info.originLibrary = pool_->intern(originLibrary);
  info.twoLevelLibrary = pool_->intern(util::prefixLevels(originLibrary, 2));
  if (program_ != nullptr) {
    // One compiled walk answers the builtin filter; a second answers the
    // ant/common lists and the corpus election for the origin package.
    info.builtin = program_->isBuiltinFrame(signature);
    info.junkPackage = AttributionProgram::isJunkPackageEntry(signature);
    const AttributionProgram::Lookup hit =
        program_->lookupPackage(originLibrary);
    info.libraryCategory = pool_->intern(program_->categoryOf(hit));
    info.ant = hit.ant;
    info.common = hit.common;
  } else {
    info.builtin = isBuiltinFrame(signature);
    info.junkPackage = isJunkPackageFrame(signature);
    info.libraryCategory =
        pool_->intern(corpus_.matchCategory(originLibrary).category);
    info.ant = radar::antLibraries().matches(originLibrary);
    info.common = radar::commonLibraries().matches(originLibrary);
  }
  info.reflectMarker = isReflectionMarkerFrame(signature);
  return info;
}

const TrafficAttributor::FrameInfo& TrafficAttributor::sharedFrameInfo(
    util::Symbol signature) const {
  {
    const std::shared_lock lock(frameMutex_);
    const auto it = frameCache_.find(signature.id());
    if (it != frameCache_.end()) return it->second;
  }
  // Compute outside the exclusive section (corpus prediction is the pricey
  // part); a losing racer's identical entry is simply discarded.
  FrameInfo info = computeFrameInfo(signature.view());
  info.signature = signature;
  const std::unique_lock lock(frameMutex_);
  return frameCache_.try_emplace(signature.id(), info).first->second;
}

std::vector<FlowRecord> TrafficAttributor::attribute(
    const RunArtifacts& run) const {
  // 1. IP -> (time, domain) table from the DNS responses in the capture,
  //    so each flow maps to the domain resolved most recently before it.
  //    Domains are views into the capture's packets (which outlive this
  //    call) — no per-packet string copies.
  std::unordered_map<net::Ipv4Addr,
                     std::vector<std::pair<util::SimTimeMs, std::string_view>>>
      dnsByIp;
  // The capture records answered-DNS packet indices on append, so this
  // visits exactly the packets that matter instead of scanning the whole
  // capture for them (queries and NXDOMAINs were already excluded there).
  const auto& capturePackets = run.capture.packets();
  for (const std::uint32_t i : run.capture.dnsAnswerPackets()) {
    const auto& pkt = capturePackets[i];
    dnsByIp[pkt.dnsAnswer].emplace_back(pkt.timestampMs,
                                        std::string_view(pkt.dnsQname));
  }
  for (auto& [ip, entries] : dnsByIp)
    std::sort(entries.begin(), entries.end());

  const auto domainFor = [&](net::Ipv4Addr ip,
                             util::SimTimeMs when) -> std::string_view {
    const auto it = dnsByIp.find(ip);
    if (it == dnsByIp.end()) return {};
    std::string_view best;
    for (const auto& [ts, domain] : it->second) {
      if (ts > when) break;
      best = domain;
    }
    // A resolution can postdate the report stamp by the handshake RTT.
    if (best.empty() && !it->second.empty()) best = it->second.front().second;
    return best;
  };

  // 1b. HTTP Host headers dissected from the capture are authoritative for
  //     their socket: on co-hosted addresses (CDNs) DNS correlation alone
  //     is ambiguous, exactly the confusion the paper attributes to CDNs.
  //     One flat index sort groups the exchanges by socket and orders each
  //     group chronologically — hostFor picks the first in-window exchange,
  //     and the DPI pass does not guarantee chronological emission (it
  //     emits per stream, and streams interleave), so without the ordering
  //     a late exchange could shadow the one that actually opened the
  //     window. The former per-pair map of vectors paid a node and vector
  //     allocation per socket.
  const auto& exchanges = run.capture.httpExchanges();
  std::vector<std::uint32_t> exchangeOrder(exchanges.size());
  for (std::uint32_t i = 0; i < exchangeOrder.size(); ++i) exchangeOrder[i] = i;
  std::sort(exchangeOrder.begin(), exchangeOrder.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const net::HttpExchange& ea = exchanges[a];
              const net::HttpExchange& eb = exchanges[b];
              if (!(ea.pair == eb.pair)) return ea.pair < eb.pair;
              if (ea.timestampMs != eb.timestampMs)
                return ea.timestampMs < eb.timestampMs;
              return ea.host < eb.host;
            });

  const auto hostFor = [&](const net::SocketPair& pair, util::SimTimeMs from,
                           util::SimTimeMs to) -> std::string_view {
    auto it = std::lower_bound(exchangeOrder.begin(), exchangeOrder.end(),
                               pair,
                               [&](std::uint32_t i, const net::SocketPair& p) {
                                 return exchanges[i].pair < p;
                               });
    for (; it != exchangeOrder.end() && exchanges[*it].pair == pair; ++it) {
      const net::HttpExchange& exchange = exchanges[*it];
      if (exchange.timestampMs > to) break;
      if (exchange.timestampMs >= from)
        return std::string_view(exchange.host);
    }
    return {};
  };

  // 1c. Index the capture once: every flow below queries its stream volume
  //     in O(log P) instead of rescanning all P packets (the old
  //     O(flows x packets) hot spot of the offline stage).
  std::optional<net::CaptureIndex> captureIndex;
  if (config_.useCaptureIndex) captureIndex.emplace(run.capture);
  const auto volumeFor = [&](const net::SocketPair& pair, util::SimTimeMs from,
                             util::SimTimeMs to) {
    return captureIndex ? captureIndex->streamVolume(pair, from, to)
                        : run.capture.streamVolume(pair, from, to);
  };

  // 1d. Per-frame derivation caching. With internSymbols the cache is the
  //     attributor-lifetime frameCache_ keyed by interned signature id —
  //     the same SDK stacks recur in every app, so parsing and corpus
  //     prediction happen once per study; a per-call view-keyed memo in
  //     front of it collapses the repeats *within* a run to one hash probe
  //     with no pool traffic or cache lock. Without internSymbols, fall
  //     back to per-call memos keyed by views into run.reports (which
  //     outlives this call), exactly the pre-interning behavior.
  std::unordered_map<std::string_view, const FrameInfo*> frameMemo;
  std::unordered_map<std::string_view, bool> builtinMemo;
  std::unordered_map<std::string_view, bool> junkMemo;
  std::unordered_map<std::string_view, FrameInfo> originMemo;

  const auto sharedInfoOf = [&](const std::string& frame) -> const FrameInfo& {
    const auto [it, inserted] = frameMemo.try_emplace(frame, nullptr);
    if (inserted) it->second = &sharedFrameInfo(pool_->intern(frame));
    return *it->second;
  };
  const auto isBuiltinOf = [&](const std::string& frame) -> bool {
    if (config_.internSymbols) return sharedInfoOf(frame).builtin;
    if (!config_.memoizeFrames) return isBuiltinFrame(frame);
    const auto [it, inserted] = builtinMemo.try_emplace(frame, false);
    if (inserted) it->second = isBuiltinFrame(frame);
    return it->second;
  };
  const auto isJunkOf = [&](const std::string& frame) -> bool {
    if (config_.internSymbols) return sharedInfoOf(frame).junkPackage;
    if (!config_.memoizeFrames) return isJunkPackageFrame(frame);
    const auto [it, inserted] = junkMemo.try_emplace(frame, false);
    if (inserted) it->second = isJunkPackageFrame(frame);
    return it->second;
  };
  const auto isReflectOf = [&](const std::string& frame) -> bool {
    // Plain string equality: cheap enough to skip the memo tiers.
    if (config_.internSymbols) return sharedInfoOf(frame).reflectMarker;
    return isReflectionMarkerFrame(frame);
  };
  const auto originIndexOf =
      [&](std::span<const std::string> stack) -> std::optional<std::size_t> {
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (isBuiltinOf(stack[i])) continue;
      if (config_.elideTrampolines &&
          (isJunkOf(stack[i]) || (i >= 1 && isReflectOf(stack[i - 1]))))
        continue;
      return i;
    }
    return std::nullopt;
  };
  const auto originInfoFor = [&](const std::string& signature) -> FrameInfo {
    if (!config_.memoizeFrames) return computeFrameInfo(signature);
    const auto [it, inserted] = originMemo.try_emplace(signature);
    if (inserted) it->second = computeFrameInfo(signature);
    return it->second;
  };

  // 1e. Domain lookups repeat heavily within a run (one CDN or ad host
  //     serves many flows); memoize the interned domain and its category
  //     per distinct name so the categorizer's global lock is taken once
  //     per domain, not once per flow. Gated with the other per-run memos
  //     so the memo-free reference path stays untouched.
  struct DomainSyms {
    util::Symbol domain;
    util::Symbol category;
  };
  std::unordered_map<std::string_view, DomainSyms> domainMemo;

  // 2. Connection windows: reports sharing a socket pair (ephemeral port
  //    reuse) are disambiguated chronologically — each report owns the
  //    window from just before its connect until the next same-pair report.
  //    One flat index sort groups by pair and orders each group by time;
  //    the former std::map of vectors paid a node allocation per
  //    connection plus a sort per group.
  std::vector<std::uint32_t> reportOrder(run.reports.size());
  for (std::uint32_t i = 0; i < reportOrder.size(); ++i) reportOrder[i] = i;
  std::sort(reportOrder.begin(), reportOrder.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const UdpReport& ra = run.reports[a];
              const UdpReport& rb = run.reports[b];
              if (ra.socketPair != rb.socketPair)
                return ra.socketPair < rb.socketPair;
              return ra.timestampMs < rb.timestampMs;
            });

  std::vector<FlowRecord> flows;
  flows.reserve(run.reports.size());

  // Per-run constants interned once, not once per flow.
  const util::Symbol apkSym = pool_->intern(run.apkSha256);
  const util::Symbol packageSym = pool_->intern(run.packageName);
  const util::Symbol appCategorySym = pool_->intern(run.appCategory);
  const util::Symbol unknownDomainCategorySym =
      pool_->intern(vtsim::kUnknownDomainCategory);
  const util::Symbol unknownLibraryCategorySym =
      pool_->intern(radar::kUnknownCategory);

  for (std::size_t groupFirst = 0; groupFirst < reportOrder.size();) {
    const net::SocketPair pair =
        run.reports[reportOrder[groupFirst]].socketPair;
    std::size_t groupLast = groupFirst + 1;
    while (groupLast < reportOrder.size() &&
           run.reports[reportOrder[groupLast]].socketPair == pair)
      ++groupLast;
    const std::span<const std::uint32_t> indices(
        reportOrder.data() + groupFirst, groupLast - groupFirst);
    groupFirst = groupLast;
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const UdpReport& report = run.reports[indices[k]];
      // Keep-alive boundary reports (ordinal >= 1) are stamped strictly
      // after every packet of the preceding request on the same socket, so
      // the report timestamp itself is an exact window start — backward
      // slack would leak the previous request's packets into this flow.
      // Connect reports (ordinal 0, i.e. every legacy report) keep the
      // handshake slack.
      const util::SimTimeMs from =
          report.requestOrdinal > 0 ? report.timestampMs
          : report.timestampMs > config_.connectSlackMs
              ? report.timestampMs - config_.connectSlackMs
              : 0;
      const util::SimTimeMs to =
          k + 1 < indices.size()
              ? run.reports[indices[k + 1]].timestampMs - 1
              : std::numeric_limits<util::SimTimeMs>::max();

      const auto volume = volumeFor(pair, from, to);

      FlowRecord flow;
      flow.apkSha256 = apkSym;
      flow.appPackage = packageSym;
      flow.appCategory = appCategorySym;
      flow.socketPair = pair;
      flow.connectTimeMs = report.timestampMs;
      // Data transfer means payload: header-only segments (SYN/ACK/FIN)
      // carry no app data and would otherwise put an artificial ceiling on
      // the receive/send ratios of download-heavy flows.
      flow.sentBytes = volume.payloadFromSrc;
      flow.recvBytes = volume.payloadFromDst;
      flow.requestOrdinal = report.requestOrdinal;
      flow.rttMs = volume.rttMs();

      std::string_view domain = hostFor(pair, from, to);
      if (domain.empty()) domain = domainFor(pair.dst.ip, report.timestampMs);
      if (config_.memoizeFrames || config_.internSymbols) {
        const auto [it, inserted] = domainMemo.try_emplace(domain);
        if (inserted) {
          it->second.domain = pool_->intern(domain);
          it->second.category =
              domain.empty()
                  ? unknownDomainCategorySym
                  : pool_->intern(
                        domains_.categorize(std::string(domain)).category);
        }
        flow.domain = it->second.domain;
        flow.domainCategory = it->second.category;
      } else {
        flow.domainCategory =
            domain.empty()
                ? unknownDomainCategorySym
                : pool_->intern(
                      domains_.categorize(std::string(domain)).category);
        flow.domain = pool_->intern(domain);
      }

      const auto origin = originIndexOf(report.stackSignatures);
      if (origin) {
        const std::string& signature = report.stackSignatures[*origin];
        if (config_.internSymbols) {
          // The shared cache entry carries the interned signature: the
          // origin frame costs one memo probe total, not three interns.
          const FrameInfo& info = sharedInfoOf(signature);
          flow.originSignature = info.signature;
          flow.originLibrary = info.originLibrary;
          flow.twoLevelLibrary = info.twoLevelLibrary;
          flow.libraryCategory = info.libraryCategory;
          flow.antOrigin = info.ant;
          flow.commonOrigin = info.common;
        } else {
          flow.originSignature = pool_->intern(signature);
          const FrameInfo info = originInfoFor(signature);
          flow.originLibrary = info.originLibrary;
          flow.twoLevelLibrary = info.twoLevelLibrary;
          flow.libraryCategory = info.libraryCategory;
          flow.antOrigin = info.ant;
          flow.commonOrigin = info.common;
        }
      } else {
        flow.builtinOrigin = true;
        std::string star = "*-";
        star.append(flow.domainCategory.view());
        flow.originLibrary = pool_->intern(star);
        flow.twoLevelLibrary = flow.originLibrary;
        flow.libraryCategory = unknownLibraryCategorySym;
      }

      flows.push_back(flow);
    }
  }

  // Keep report order stable for callers (the grouping reordered them).
  std::sort(flows.begin(), flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.connectTimeMs < b.connectTimeMs;
            });
  return flows;
}

FlowColumns TrafficAttributor::attributeColumns(const RunArtifacts& run) const {
  // Columnarizing the row output (rather than building columns in-line)
  // keeps a single attribution code path and makes row/column equivalence
  // true by construction; the columnar win is in the downstream fold, not
  // here. The transpose is a linear pass over trivially copyable fields.
  return FlowColumns::fromRows(attribute(run), *pool_);
}

void FlowColumns::reserve(std::size_t n) {
  apkSha256.reserve(n);
  appPackage.reserve(n);
  appCategory.reserve(n);
  originLibrary.reserve(n);
  originSignature.reserve(n);
  twoLevelLibrary.reserve(n);
  libraryCategory.reserve(n);
  domain.reserve(n);
  domainCategory.reserve(n);
  flags.reserve(n);
  sentBytes.reserve(n);
  recvBytes.reserve(n);
  socketPair.reserve(n);
  connectTimeMs.reserve(n);
  requestOrdinal.reserve(n);
  rttMs.reserve(n);
}

void FlowColumns::push(const FlowRecord& flow) {
  apkSha256.push_back(flow.apkSha256.id());
  appPackage.push_back(flow.appPackage.id());
  appCategory.push_back(flow.appCategory.id());
  originLibrary.push_back(flow.originLibrary.id());
  originSignature.push_back(flow.originSignature.id());
  twoLevelLibrary.push_back(flow.twoLevelLibrary.id());
  libraryCategory.push_back(flow.libraryCategory.id());
  domain.push_back(flow.domain.id());
  domainCategory.push_back(flow.domainCategory.id());
  flags.push_back(static_cast<std::uint8_t>(
      (flow.builtinOrigin ? kBuiltinOrigin : 0) |
      (flow.antOrigin ? kAntOrigin : 0) |
      (flow.commonOrigin ? kCommonOrigin : 0)));
  sentBytes.push_back(flow.sentBytes);
  recvBytes.push_back(flow.recvBytes);
  socketPair.push_back(flow.socketPair);
  connectTimeMs.push_back(flow.connectTimeMs);
  requestOrdinal.push_back(flow.requestOrdinal);
  rttMs.push_back(flow.rttMs);
}

FlowRecord FlowColumns::row(std::size_t i) const {
  const auto symbolAt = [&](std::uint32_t id) -> util::Symbol {
    return id == util::Symbol::kNoId ? util::Symbol{} : pool->at(id);
  };
  FlowRecord flow;
  flow.apkSha256 = symbolAt(apkSha256[i]);
  flow.appPackage = symbolAt(appPackage[i]);
  flow.appCategory = symbolAt(appCategory[i]);
  flow.originLibrary = symbolAt(originLibrary[i]);
  flow.originSignature = symbolAt(originSignature[i]);
  flow.twoLevelLibrary = symbolAt(twoLevelLibrary[i]);
  flow.libraryCategory = symbolAt(libraryCategory[i]);
  flow.domain = symbolAt(domain[i]);
  flow.domainCategory = symbolAt(domainCategory[i]);
  flow.builtinOrigin = (flags[i] & kBuiltinOrigin) != 0;
  flow.antOrigin = (flags[i] & kAntOrigin) != 0;
  flow.commonOrigin = (flags[i] & kCommonOrigin) != 0;
  flow.socketPair = socketPair[i];
  flow.connectTimeMs = connectTimeMs[i];
  flow.sentBytes = sentBytes[i];
  flow.recvBytes = recvBytes[i];
  flow.requestOrdinal = requestOrdinal[i];
  flow.rttMs = rttMs[i];
  return flow;
}

FlowColumns FlowColumns::fromRows(std::span<const FlowRecord> flows,
                                  const util::SymbolPool& pool) {
  FlowColumns columns;
  columns.pool = &pool;
  columns.reserve(flows.size());
  for (const FlowRecord& flow : flows) columns.push(flow);
  return columns;
}

std::uint64_t TrafficAttributor::unattributedTcpPayload(
    const RunArtifacts& run, std::span<const FlowRecord> flows) {
  // The capture maintains this sum incrementally on append; re-deriving it
  // here was a full packet scan per run.
  const std::uint64_t totalTcpPayload = run.capture.totalTcpPayloadBytes();
  std::uint64_t attributed = 0;
  for (const auto& flow : flows) attributed += flow.sentBytes + flow.recvBytes;
  return attributed >= totalTcpPayload ? 0 : totalTcpPayload - attributed;
}

}  // namespace libspector::core
