#include "core/analysis.hpp"

#include <algorithm>

#include "core/supervisor.hpp"

namespace libspector::core {

StudyAggregator::AppAgg StudyAggregator::makeAppAgg(
    const RunArtifacts& run) const {
  AppAgg app;
  app.category = run.appCategory;
  app.coverage = run.coverage.ratio();
  app.totalMethods = run.coverage.totalMethods;
  return app;
}

StudyAggregator::EntityAgg& StudyAggregator::entityAt(
    util::DenseSymbolMap<EntityAgg>& table, std::size_t& count,
    util::Symbol name) {
  EntityAgg& agg = table[name.id()];
  if (!agg.present) {
    agg.present = true;
    agg.name = name;
    ++count;
  }
  return agg;
}

std::uint32_t StudyAggregator::catSlot(util::Symbol category) {
  std::uint32_t& slot = catSlotOf_[category.id()];
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(catSlots_.size());
    catSlots_.push_back(category);
    if (catSlots_.size() > catStride_) growCategoryMatrices();
  }
  return slot;
}

void StudyAggregator::growCategoryMatrices() {
  const std::size_t stride = std::max<std::size_t>(16, catStride_ * 2);
  const auto regrid = [&](std::vector<MatrixCell>& matrix) {
    std::vector<MatrixCell> grown(stride * stride);
    for (std::size_t a = 0; a < catStride_; ++a)
      for (std::size_t b = 0; b < catStride_; ++b)
        grown[a * stride + b] = matrix[a * catStride_ + b];
    matrix = std::move(grown);
  };
  regrid(byAppCatLibCat_);
  regrid(heatmap_);
  catStride_ = stride;
}

void StudyAggregator::bumpMatrix(std::vector<MatrixCell>& matrix,
                                 std::uint32_t a, std::uint32_t b,
                                 std::uint64_t bytes) {
  MatrixCell& cell = matrix[std::size_t{a} * catStride_ + b];
  cell.used = 1;
  cell.bytes += bytes;
}

void StudyAggregator::foldRunPackets(const RunArtifacts& run) {
  for (const auto& pkt : run.capture.packets()) {
    udp_.totalBytes += pkt.wireBytes;
    if (pkt.proto != net::Proto::Udp) continue;
    if (pkt.pair.dst == kDefaultCollectorEndpoint) {
      udp_.reportBytes += pkt.wireBytes;
    } else {
      udp_.udpBytes += pkt.wireBytes;
      if (pkt.isDns()) udp_.dnsBytes += pkt.wireBytes;
    }
  }
}

void StudyAggregator::addApp(const RunArtifacts& run,
                             std::span<const FlowRecord> flows) {
  AppAgg app = makeAppAgg(run);

  // Translate flow symbols (owned by the producing attributor's pool) into
  // this study's pool, once per distinct entry per app: keyed by pool-entry
  // identity, a repeat costs one pointer hash instead of a string hash.
  std::unordered_map<const void*, util::Symbol> local;
  const auto localSym = [&](util::Symbol s) -> util::Symbol {
    const auto [it, inserted] = local.try_emplace(s.identity());
    if (inserted) it->second = pool_.intern(s.view());
    return it->second;
  };

  for (const auto& flow : flows) {
    app.sent += flow.sentBytes;
    app.recv += flow.recvBytes;
    if (flow.antOrigin) app.antBytes += flow.sentBytes + flow.recvBytes;
    if (flow.commonOrigin) app.clBytes += flow.sentBytes + flow.recvBytes;

    const util::Symbol originLibrary = localSym(flow.originLibrary);
    const util::Symbol libraryCategory = localSym(flow.libraryCategory);

    EntityAgg& lib = entityAt(libraries_, libraryCount_, originLibrary);
    lib.sent += flow.sentBytes;
    lib.recv += flow.recvBytes;
    lib.category = libraryCategory;
    lib.ant = lib.ant || flow.antOrigin;
    lib.common = lib.common || flow.commonOrigin;
    if (flow.rttMs != 0) {
      lib.rttSumMs += flow.rttMs;
      ++lib.rttFlows;
    }

    const util::Symbol twoLevelLibrary = localSym(flow.twoLevelLibrary);
    EntityAgg& two = entityAt(twoLevel_, twoLevelCount_, twoLevelLibrary);
    two.sent += flow.sentBytes;
    two.recv += flow.recvBytes;
    two.category = libraryCategory;

    const util::Symbol domainCategory = localSym(flow.domainCategory);
    if (!flow.domain.empty()) {
      const util::Symbol domain = localSym(flow.domain);
      EntityAgg& dom = entityAt(domains_, domainCount_, domain);
      dom.sent += flow.sentBytes;  // received by the domain's servers
      dom.recv += flow.recvBytes;  // sent by the domain's servers
      dom.category = domainCategory;
    }

    const std::uint64_t bytes = flow.sentBytes + flow.recvBytes;
    const util::Symbol appCategory = localSym(flow.appCategory);
    bumpMatrix(byAppCatLibCat_, catSlot(appCategory), catSlot(libraryCategory),
               bytes);
    bumpMatrix(heatmap_, catSlot(libraryCategory), catSlot(domainCategory),
               bytes);
    ++flowCount_;
  }
  apps_.push_back(std::move(app));
  unattributedBytes_ += TrafficAttributor::unattributedTcpPayload(run, flows);
  foldRunPackets(run);
}

void StudyAggregator::addAppColumns(const RunArtifacts& run,
                                    const FlowColumns& columns) {
  AppAgg app = makeAppAgg(run);

  // Foreign-id translation as a dense array: source pools assign ids
  // contiguously, so a vector indexed by source id replaces the row path's
  // identity-keyed hash memo — and persists across apps, making repeats
  // free study-wide, not just app-wide. Interning happens in exactly the
  // row fold's per-flow field order, so both folds assign identical local
  // pool ids (the id-order query iteration depends on it).
  std::vector<util::Symbol>& xlat = columnXlat_[columns.pool];
  if (columns.pool->size() > xlat.size()) xlat.resize(columns.pool->size());
  const auto local = [&](std::uint32_t sourceId) -> util::Symbol {
    util::Symbol& cached = xlat[sourceId];
    if (cached.identity() == nullptr)
      cached = pool_.intern(columns.pool->at(sourceId).view());
    return cached;
  };
  // The id of "" in the source pool (kNoId when never interned there, which
  // no real domain column id can equal): one comparison replaces the row
  // path's per-flow empty() check.
  const std::uint32_t emptyDomainId = columns.pool->find("").id();

  std::uint64_t attributedBytes = 0;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const std::uint64_t sent = columns.sentBytes[i];
    const std::uint64_t recv = columns.recvBytes[i];
    const std::uint64_t bytes = sent + recv;
    const std::uint8_t flowFlags = columns.flags[i];
    const bool ant = (flowFlags & FlowColumns::kAntOrigin) != 0;
    const bool common = (flowFlags & FlowColumns::kCommonOrigin) != 0;
    app.sent += sent;
    app.recv += recv;
    if (ant) app.antBytes += bytes;
    if (common) app.clBytes += bytes;

    const util::Symbol originLibrary = local(columns.originLibrary[i]);
    const util::Symbol libraryCategory = local(columns.libraryCategory[i]);

    EntityAgg& lib = entityAt(libraries_, libraryCount_, originLibrary);
    lib.sent += sent;
    lib.recv += recv;
    lib.category = libraryCategory;
    lib.ant = lib.ant || ant;
    lib.common = lib.common || common;
    if (columns.rttMs[i] != 0) {
      lib.rttSumMs += columns.rttMs[i];
      ++lib.rttFlows;
    }

    const util::Symbol twoLevelLibrary = local(columns.twoLevelLibrary[i]);
    EntityAgg& two = entityAt(twoLevel_, twoLevelCount_, twoLevelLibrary);
    two.sent += sent;
    two.recv += recv;
    two.category = libraryCategory;

    const util::Symbol domainCategory = local(columns.domainCategory[i]);
    if (columns.domain[i] != emptyDomainId) {
      const util::Symbol domain = local(columns.domain[i]);
      EntityAgg& dom = entityAt(domains_, domainCount_, domain);
      dom.sent += sent;
      dom.recv += recv;
      dom.category = domainCategory;
    }

    const util::Symbol appCategory = local(columns.appCategory[i]);
    bumpMatrix(byAppCatLibCat_, catSlot(appCategory), catSlot(libraryCategory),
               bytes);
    bumpMatrix(heatmap_, catSlot(libraryCategory), catSlot(domainCategory),
               bytes);
    ++flowCount_;
    attributedBytes += bytes;
  }
  apps_.push_back(std::move(app));
  const std::uint64_t totalTcpPayload = run.capture.totalTcpPayloadBytes();
  unattributedBytes_ += attributedBytes >= totalTcpPayload
                            ? 0
                            : totalTcpPayload - attributedBytes;
  foldRunPackets(run);
}

StudyAggregator::Totals StudyAggregator::totals() const {
  Totals totals;
  for (const auto& app : apps_) {
    totals.sentBytes += app.sent;
    totals.recvBytes += app.recv;
  }
  totals.totalBytes = totals.sentBytes + totals.recvBytes;
  totals.flowCount = flowCount_;
  totals.appCount = apps_.size();
  totals.originLibraryCount = libraryCount_;
  totals.twoLevelLibraryCount = twoLevelCount_;
  totals.domainCount = domainCount_;
  totals.unattributedBytes = unattributedBytes_;
  return totals;
}

std::map<std::string, std::map<std::string, std::uint64_t>>
StudyAggregator::transferByAppAndLibCategory() const {
  // Materialize by `used`, not by nonzero bytes: the fold records a cell for
  // every observed (appCat, libCat) pair even when its byte total is zero,
  // and the rendered CSVs include those rows.
  std::map<std::string, std::map<std::string, std::uint64_t>> out;
  for (std::size_t a = 0; a < catSlots_.size(); ++a)
    for (std::size_t b = 0; b < catSlots_.size(); ++b) {
      const MatrixCell& cell = byAppCatLibCat_[a * catStride_ + b];
      if (!cell.used) continue;
      out[catSlots_[a].str()][catSlots_[b].str()] += cell.bytes;
    }
  return out;
}

std::map<std::string, std::uint64_t> StudyAggregator::transferByLibCategory()
    const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t a = 0; a < catSlots_.size(); ++a)
    for (std::size_t b = 0; b < catSlots_.size(); ++b) {
      const MatrixCell& cell = byAppCatLibCat_[a * catStride_ + b];
      if (!cell.used) continue;
      out[catSlots_[b].str()] += cell.bytes;
    }
  return out;
}

namespace {

std::vector<StudyAggregator::RankedEntry> topOf(
    std::vector<StudyAggregator::RankedEntry> entries, std::size_t n) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.name < b.name;  // deterministic tie-break
            });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

}  // namespace

std::vector<StudyAggregator::RankedEntry> StudyAggregator::topOriginLibraries(
    std::size_t n) const {
  std::vector<RankedEntry> prepared;
  prepared.reserve(libraryCount_);
  for (const EntityAgg& agg : libraries_) {
    if (!agg.present) continue;
    prepared.push_back({agg.name.str(), agg.total(), agg.category.str()});
  }
  return topOf(std::move(prepared), n);
}

std::vector<StudyAggregator::RankedEntry> StudyAggregator::topTwoLevelLibraries(
    std::size_t n) const {
  std::vector<RankedEntry> prepared;
  prepared.reserve(twoLevelCount_);
  for (const EntityAgg& agg : twoLevel_) {
    if (!agg.present) continue;
    prepared.push_back({agg.name.str(), agg.total(), agg.category.str()});
  }
  return topOf(std::move(prepared), n);
}

std::vector<StudyAggregator::LatencyEntry> StudyAggregator::latencyByLibrary()
    const {
  std::vector<LatencyEntry> out;
  out.reserve(libraryCount_);
  for (const EntityAgg& agg : libraries_) {
    if (!agg.present || agg.rttFlows == 0) continue;
    out.push_back({agg.name.str(), agg.category.str(), agg.rttFlows,
                   static_cast<double>(agg.rttSumMs) /
                       static_cast<double>(agg.rttFlows)});
  }
  std::sort(out.begin(), out.end(),
            [](const LatencyEntry& a, const LatencyEntry& b) {
              if (a.meanRttMs != b.meanRttMs) return a.meanRttMs > b.meanRttMs;
              return a.library < b.library;
            });
  return out;
}

std::vector<double> StudyAggregator::sentTotals(Entity entity) const {
  std::vector<double> out;
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) out.push_back(static_cast<double>(app.sent));
      break;
    case Entity::Library:
      for (const EntityAgg& agg : libraries_)
        if (agg.present) out.push_back(static_cast<double>(agg.sent));
      break;
    case Entity::Domain:
      for (const EntityAgg& agg : domains_)
        if (agg.present) out.push_back(static_cast<double>(agg.sent));
      break;
  }
  return out;
}

std::vector<double> StudyAggregator::recvTotals(Entity entity) const {
  std::vector<double> out;
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) out.push_back(static_cast<double>(app.recv));
      break;
    case Entity::Library:
      for (const EntityAgg& agg : libraries_)
        if (agg.present) out.push_back(static_cast<double>(agg.recv));
      break;
    case Entity::Domain:
      for (const EntityAgg& agg : domains_)
        if (agg.present) out.push_back(static_cast<double>(agg.recv));
      break;
  }
  return out;
}

StudyAggregator::RatioStats StudyAggregator::flowRatios(Entity entity) const {
  RatioStats stats;
  const auto addRatio = [&](std::uint64_t numerator, std::uint64_t denominator) {
    if (denominator == 0) return;
    stats.ratios.push_back(static_cast<double>(numerator) /
                           static_cast<double>(denominator));
  };
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) addRatio(app.recv, app.sent);
      break;
    case Entity::Library:
      for (const EntityAgg& agg : libraries_)
        if (agg.present) addRatio(agg.recv, agg.sent);
      break;
    case Entity::Domain:
      // The paper flips perspective for domains: what the domain's servers
      // send over what they receive.
      for (const EntityAgg& agg : domains_)
        if (agg.present) addRatio(agg.recv, agg.sent);
      break;
  }
  std::sort(stats.ratios.begin(), stats.ratios.end());
  double sum = 0.0;
  for (const double r : stats.ratios) sum += r;
  stats.mean = stats.ratios.empty() ? 0.0 : sum / static_cast<double>(stats.ratios.size());
  return stats;
}

StudyAggregator::AnTStats StudyAggregator::antStats() const {
  AnTStats stats;
  for (const auto& app : apps_) {
    const std::uint64_t total = app.total();
    if (total == 0) continue;
    ++stats.appsWithTraffic;
    const double antShare =
        static_cast<double>(app.antBytes) / static_cast<double>(total);
    const double clShare =
        static_cast<double>(app.clBytes) / static_cast<double>(total);
    stats.antShare.push_back(antShare);
    stats.clShare.push_back(clShare);
    if (app.antBytes == 0) ++stats.noAntApps;
    else ++stats.someAntApps;
    if (app.antBytes == total) ++stats.antOnlyApps;
  }
  std::sort(stats.antShare.begin(), stats.antShare.end());
  std::sort(stats.clShare.begin(), stats.clShare.end());
  const auto mean = [](const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  };
  stats.antShareMean = mean(stats.antShare);
  stats.clShareMean = mean(stats.clShare);

  std::vector<double> antRatios;
  std::vector<double> clRatios;
  for (const EntityAgg& agg : libraries_) {
    if (!agg.present || agg.sent == 0) continue;
    const double ratio =
        static_cast<double>(agg.recv) / static_cast<double>(agg.sent);
    if (agg.ant) antRatios.push_back(ratio);
    if (agg.common) clRatios.push_back(ratio);
  }
  stats.antMeanFlowRatio = mean(antRatios);
  stats.clMeanFlowRatio = mean(clRatios);
  return stats;
}

std::map<std::string, double> StudyAggregator::avgBytesPerLibraryByCategory()
    const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const EntityAgg& agg : libraries_) {
    if (!agg.present) continue;
    auto& [bytes, count] = sums[agg.category.str()];
    bytes += agg.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, double> StudyAggregator::avgBytesPerDomainByCategory()
    const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const EntityAgg& agg : domains_) {
    if (!agg.present) continue;
    auto& [bytes, count] = sums[agg.category.str()];
    bytes += agg.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, double> StudyAggregator::avgBytesPerAppByCategory() const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const auto& app : apps_) {
    auto& [bytes, count] = sums[app.category];
    bytes += app.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, std::map<std::string, std::uint64_t>>
StudyAggregator::libraryDomainHeatmap() const {
  std::map<std::string, std::map<std::string, std::uint64_t>> out;
  for (std::size_t a = 0; a < catSlots_.size(); ++a)
    for (std::size_t b = 0; b < catSlots_.size(); ++b) {
      const MatrixCell& cell = heatmap_[a * catStride_ + b];
      if (!cell.used) continue;
      out[catSlots_[a].str()][catSlots_[b].str()] += cell.bytes;
    }
  return out;
}

double StudyAggregator::knownLibraryCdnShare() const {
  std::uint64_t known = 0;
  std::uint64_t knownCdn = 0;
  for (std::size_t a = 0; a < catSlots_.size(); ++a) {
    if (catSlots_[a] == std::string_view("Unknown")) continue;
    for (std::size_t b = 0; b < catSlots_.size(); ++b) {
      const MatrixCell& cell = heatmap_[a * catStride_ + b];
      if (!cell.used) continue;
      known += cell.bytes;
      if (catSlots_[b] == std::string_view("cdn")) knownCdn += cell.bytes;
    }
  }
  return known == 0 ? 0.0
                    : static_cast<double>(knownCdn) / static_cast<double>(known);
}

StudyAggregator::CoverageStats StudyAggregator::coverageStats() const {
  CoverageStats stats;
  double methodSum = 0.0;
  for (const auto& app : apps_) {
    stats.perApp.push_back(app.coverage);
    methodSum += static_cast<double>(app.totalMethods);
  }
  std::sort(stats.perApp.begin(), stats.perApp.end());
  if (!apps_.empty()) {
    double sum = 0.0;
    for (const double c : stats.perApp) sum += c;
    stats.mean = sum / static_cast<double>(stats.perApp.size());
    stats.meanMethodsPerApk = methodSum / static_cast<double>(apps_.size());
    std::size_t above = 0;
    for (const double c : stats.perApp)
      if (c > stats.mean) ++above;
    stats.fractionAboveMean =
        static_cast<double>(above) / static_cast<double>(stats.perApp.size());
  }
  return stats;
}

std::vector<double> StudyAggregator::sortedTotals(
    const std::vector<std::uint64_t>& values) {
  std::vector<double> out(values.begin(), values.end());
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

StudyAggregator::Concentration StudyAggregator::concentration() const {
  const auto countForHalf = [](std::vector<std::uint64_t> totals) {
    std::uint64_t grand = 0;
    for (const std::uint64_t t : totals) grand += t;
    std::sort(totals.begin(), totals.end(), std::greater<>());
    std::uint64_t running = 0;
    std::size_t count = 0;
    for (const std::uint64_t t : totals) {
      if (running * 2 >= grand) break;
      running += t;
      ++count;
    }
    return count;
  };

  std::vector<std::uint64_t> appTotals;
  for (const auto& app : apps_) appTotals.push_back(app.total());
  std::vector<std::uint64_t> libTotals;
  for (const EntityAgg& agg : libraries_)
    if (agg.present) libTotals.push_back(agg.total());
  std::vector<std::uint64_t> domainTotals;
  for (const EntityAgg& agg : domains_)
    if (agg.present) domainTotals.push_back(agg.total());

  return {countForHalf(std::move(appTotals)), countForHalf(std::move(libTotals)),
          countForHalf(std::move(domainTotals))};
}

double StudyAggregator::meanBytesPerRun(const std::string& libCategory) const {
  if (apps_.empty()) return 0.0;
  const auto byCategory = transferByLibCategory();
  const auto it = byCategory.find(libCategory);
  if (it == byCategory.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(apps_.size());
}

StudyAccumulator::StudyAccumulator(StudyAggregator& study, FoldHook onFolded)
    : study_(study), onFolded_(std::move(onFolded)) {}

void StudyAccumulator::foldLocked(PendingApp&& app) {
  if (app.columnar) {
    study_.addAppColumns(app.run, app.columns);
  } else {
    study_.addApp(app.run, app.flows);
  }
  if (onFolded_) onFolded_(std::move(app.run));
  ++folded_;
}

void StudyAccumulator::drainLocked() {
  while (true) {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first != next_) return;
    if (it->second.has_value()) foldLocked(std::move(*it->second));
    pending_.erase(it);
    ++next_;
  }
}

void StudyAccumulator::add(std::size_t jobIndex, RunArtifacts&& run,
                           std::vector<FlowRecord>&& flows) {
  const std::scoped_lock lock(mutex_);
  pending_.emplace(jobIndex,
                   PendingApp{std::move(run), std::move(flows), {}, false});
  drainLocked();
}

void StudyAccumulator::addColumns(std::size_t jobIndex, RunArtifacts&& run,
                                  FlowColumns&& columns) {
  const std::scoped_lock lock(mutex_);
  pending_.emplace(jobIndex,
                   PendingApp{std::move(run), {}, std::move(columns), true});
  drainLocked();
}

void StudyAccumulator::skip(std::size_t jobIndex) {
  const std::scoped_lock lock(mutex_);
  pending_.emplace(jobIndex, std::nullopt);
  drainLocked();
}

void StudyAccumulator::finish() {
  const std::scoped_lock lock(mutex_);
  // Tolerate gaps (a worker that died without reporting): fold whatever
  // arrived, still in index order.
  for (auto& [index, app] : pending_) {
    if (!app.has_value()) continue;
    foldLocked(std::move(*app));
  }
  if (!pending_.empty()) next_ = pending_.rbegin()->first + 1;
  pending_.clear();
}

std::size_t StudyAccumulator::appsFolded() const {
  const std::scoped_lock lock(mutex_);
  return folded_;
}

std::size_t StudyAccumulator::pendingCount() const {
  const std::scoped_lock lock(mutex_);
  return pending_.size();
}

}  // namespace libspector::core
