#include "core/analysis.hpp"

#include <algorithm>

#include "core/supervisor.hpp"

namespace libspector::core {

void StudyAggregator::addApp(const RunArtifacts& run,
                             std::span<const FlowRecord> flows) {
  AppAgg app;
  app.category = run.appCategory;
  app.coverage = run.coverage.ratio();
  app.totalMethods = run.coverage.totalMethods;

  // Translate flow symbols (owned by the producing attributor's pool) into
  // this study's pool, once per distinct entry per app: keyed by pool-entry
  // identity, a repeat costs one pointer hash instead of a string hash.
  std::unordered_map<const void*, util::Symbol> local;
  const auto localSym = [&](util::Symbol s) -> util::Symbol {
    const auto [it, inserted] = local.try_emplace(s.identity());
    if (inserted) it->second = pool_.intern(s.view());
    return it->second;
  };

  for (const auto& flow : flows) {
    app.sent += flow.sentBytes;
    app.recv += flow.recvBytes;
    if (flow.antOrigin) app.antBytes += flow.sentBytes + flow.recvBytes;
    if (flow.commonOrigin) app.clBytes += flow.sentBytes + flow.recvBytes;

    const util::Symbol originLibrary = localSym(flow.originLibrary);
    const util::Symbol libraryCategory = localSym(flow.libraryCategory);

    EntityAgg& lib = libraries_[originLibrary.id()];
    lib.name = originLibrary;
    lib.sent += flow.sentBytes;
    lib.recv += flow.recvBytes;
    lib.category = libraryCategory;
    lib.ant = lib.ant || flow.antOrigin;
    lib.common = lib.common || flow.commonOrigin;

    const util::Symbol twoLevelLibrary = localSym(flow.twoLevelLibrary);
    EntityAgg& two = twoLevel_[twoLevelLibrary.id()];
    two.name = twoLevelLibrary;
    two.sent += flow.sentBytes;
    two.recv += flow.recvBytes;
    two.category = libraryCategory;

    const util::Symbol domainCategory = localSym(flow.domainCategory);
    if (!flow.domain.empty()) {
      const util::Symbol domain = localSym(flow.domain);
      EntityAgg& dom = domains_[domain.id()];
      dom.name = domain;
      dom.sent += flow.sentBytes;  // received by the domain's servers
      dom.recv += flow.recvBytes;  // sent by the domain's servers
      dom.category = domainCategory;
    }

    const std::uint64_t bytes = flow.sentBytes + flow.recvBytes;
    const util::Symbol appCategory = localSym(flow.appCategory);
    byAppCatLibCat_[{appCategory.id(), libraryCategory.id()}] += bytes;
    heatmap_[{libraryCategory.id(), domainCategory.id()}] += bytes;
    ++flowCount_;
  }
  apps_.push_back(std::move(app));
  unattributedBytes_ += TrafficAttributor::unattributedTcpPayload(run, flows);

  for (const auto& pkt : run.capture.packets()) {
    udp_.totalBytes += pkt.wireBytes;
    if (pkt.proto != net::Proto::Udp) continue;
    if (pkt.pair.dst == kDefaultCollectorEndpoint) {
      udp_.reportBytes += pkt.wireBytes;
    } else {
      udp_.udpBytes += pkt.wireBytes;
      if (pkt.isDns()) udp_.dnsBytes += pkt.wireBytes;
    }
  }
}

StudyAggregator::Totals StudyAggregator::totals() const {
  Totals totals;
  for (const auto& app : apps_) {
    totals.sentBytes += app.sent;
    totals.recvBytes += app.recv;
  }
  totals.totalBytes = totals.sentBytes + totals.recvBytes;
  totals.flowCount = flowCount_;
  totals.appCount = apps_.size();
  totals.originLibraryCount = libraries_.size();
  totals.twoLevelLibraryCount = twoLevel_.size();
  totals.domainCount = domains_.size();
  totals.unattributedBytes = unattributedBytes_;
  return totals;
}

std::map<std::string, std::map<std::string, std::uint64_t>>
StudyAggregator::transferByAppAndLibCategory() const {
  std::map<std::string, std::map<std::string, std::uint64_t>> out;
  for (const auto& [key, bytes] : byAppCatLibCat_)
    out[pool_.at(key.first).str()][pool_.at(key.second).str()] += bytes;
  return out;
}

std::map<std::string, std::uint64_t> StudyAggregator::transferByLibCategory()
    const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, bytes] : byAppCatLibCat_)
    out[pool_.at(key.second).str()] += bytes;
  return out;
}

namespace {

std::vector<StudyAggregator::RankedEntry> topOf(
    std::vector<StudyAggregator::RankedEntry> entries, std::size_t n) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.name < b.name;  // deterministic tie-break
            });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

}  // namespace

std::vector<StudyAggregator::RankedEntry> StudyAggregator::topOriginLibraries(
    std::size_t n) const {
  std::vector<RankedEntry> prepared;
  prepared.reserve(libraries_.size());
  for (const auto& [id, agg] : libraries_)
    prepared.push_back(
        {agg.name.str(), agg.total(), agg.category.str()});
  return topOf(std::move(prepared), n);
}

std::vector<StudyAggregator::RankedEntry> StudyAggregator::topTwoLevelLibraries(
    std::size_t n) const {
  std::vector<RankedEntry> prepared;
  prepared.reserve(twoLevel_.size());
  for (const auto& [id, agg] : twoLevel_)
    prepared.push_back(
        {agg.name.str(), agg.total(), agg.category.str()});
  return topOf(std::move(prepared), n);
}

std::vector<double> StudyAggregator::sentTotals(Entity entity) const {
  std::vector<double> out;
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) out.push_back(static_cast<double>(app.sent));
      break;
    case Entity::Library:
      for (const auto& [name, agg] : libraries_)
        out.push_back(static_cast<double>(agg.sent));
      break;
    case Entity::Domain:
      for (const auto& [name, agg] : domains_)
        out.push_back(static_cast<double>(agg.sent));
      break;
  }
  return out;
}

std::vector<double> StudyAggregator::recvTotals(Entity entity) const {
  std::vector<double> out;
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) out.push_back(static_cast<double>(app.recv));
      break;
    case Entity::Library:
      for (const auto& [name, agg] : libraries_)
        out.push_back(static_cast<double>(agg.recv));
      break;
    case Entity::Domain:
      for (const auto& [name, agg] : domains_)
        out.push_back(static_cast<double>(agg.recv));
      break;
  }
  return out;
}

StudyAggregator::RatioStats StudyAggregator::flowRatios(Entity entity) const {
  RatioStats stats;
  const auto addRatio = [&](std::uint64_t numerator, std::uint64_t denominator) {
    if (denominator == 0) return;
    stats.ratios.push_back(static_cast<double>(numerator) /
                           static_cast<double>(denominator));
  };
  switch (entity) {
    case Entity::App:
      for (const auto& app : apps_) addRatio(app.recv, app.sent);
      break;
    case Entity::Library:
      for (const auto& [name, agg] : libraries_) addRatio(agg.recv, agg.sent);
      break;
    case Entity::Domain:
      // The paper flips perspective for domains: what the domain's servers
      // send over what they receive.
      for (const auto& [name, agg] : domains_) addRatio(agg.recv, agg.sent);
      break;
  }
  std::sort(stats.ratios.begin(), stats.ratios.end());
  double sum = 0.0;
  for (const double r : stats.ratios) sum += r;
  stats.mean = stats.ratios.empty() ? 0.0 : sum / static_cast<double>(stats.ratios.size());
  return stats;
}

StudyAggregator::AnTStats StudyAggregator::antStats() const {
  AnTStats stats;
  for (const auto& app : apps_) {
    const std::uint64_t total = app.total();
    if (total == 0) continue;
    ++stats.appsWithTraffic;
    const double antShare =
        static_cast<double>(app.antBytes) / static_cast<double>(total);
    const double clShare =
        static_cast<double>(app.clBytes) / static_cast<double>(total);
    stats.antShare.push_back(antShare);
    stats.clShare.push_back(clShare);
    if (app.antBytes == 0) ++stats.noAntApps;
    else ++stats.someAntApps;
    if (app.antBytes == total) ++stats.antOnlyApps;
  }
  std::sort(stats.antShare.begin(), stats.antShare.end());
  std::sort(stats.clShare.begin(), stats.clShare.end());
  const auto mean = [](const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  };
  stats.antShareMean = mean(stats.antShare);
  stats.clShareMean = mean(stats.clShare);

  std::vector<double> antRatios;
  std::vector<double> clRatios;
  for (const auto& [name, agg] : libraries_) {
    if (agg.sent == 0) continue;
    const double ratio =
        static_cast<double>(agg.recv) / static_cast<double>(agg.sent);
    if (agg.ant) antRatios.push_back(ratio);
    if (agg.common) clRatios.push_back(ratio);
  }
  stats.antMeanFlowRatio = mean(antRatios);
  stats.clMeanFlowRatio = mean(clRatios);
  return stats;
}

std::map<std::string, double> StudyAggregator::avgBytesPerLibraryByCategory()
    const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const auto& [id, agg] : libraries_) {
    auto& [bytes, count] = sums[agg.category.str()];
    bytes += agg.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, double> StudyAggregator::avgBytesPerDomainByCategory()
    const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const auto& [id, agg] : domains_) {
    auto& [bytes, count] = sums[agg.category.str()];
    bytes += agg.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, double> StudyAggregator::avgBytesPerAppByCategory() const {
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> sums;
  for (const auto& app : apps_) {
    auto& [bytes, count] = sums[app.category];
    bytes += app.total();
    ++count;
  }
  std::map<std::string, double> out;
  for (const auto& [category, sum] : sums)
    out[category] = static_cast<double>(sum.first) / static_cast<double>(sum.second);
  return out;
}

std::map<std::string, std::map<std::string, std::uint64_t>>
StudyAggregator::libraryDomainHeatmap() const {
  std::map<std::string, std::map<std::string, std::uint64_t>> out;
  for (const auto& [key, bytes] : heatmap_)
    out[pool_.at(key.first).str()][pool_.at(key.second).str()] += bytes;
  return out;
}

double StudyAggregator::knownLibraryCdnShare() const {
  std::uint64_t known = 0;
  std::uint64_t knownCdn = 0;
  for (const auto& [key, bytes] : heatmap_) {
    if (pool_.at(key.first) == std::string_view("Unknown")) continue;
    known += bytes;
    if (pool_.at(key.second) == std::string_view("cdn")) knownCdn += bytes;
  }
  return known == 0 ? 0.0
                    : static_cast<double>(knownCdn) / static_cast<double>(known);
}

StudyAggregator::CoverageStats StudyAggregator::coverageStats() const {
  CoverageStats stats;
  double methodSum = 0.0;
  for (const auto& app : apps_) {
    stats.perApp.push_back(app.coverage);
    methodSum += static_cast<double>(app.totalMethods);
  }
  std::sort(stats.perApp.begin(), stats.perApp.end());
  if (!apps_.empty()) {
    double sum = 0.0;
    for (const double c : stats.perApp) sum += c;
    stats.mean = sum / static_cast<double>(stats.perApp.size());
    stats.meanMethodsPerApk = methodSum / static_cast<double>(apps_.size());
    std::size_t above = 0;
    for (const double c : stats.perApp)
      if (c > stats.mean) ++above;
    stats.fractionAboveMean =
        static_cast<double>(above) / static_cast<double>(stats.perApp.size());
  }
  return stats;
}

std::vector<double> StudyAggregator::sortedTotals(
    const std::vector<std::uint64_t>& values) {
  std::vector<double> out(values.begin(), values.end());
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

StudyAggregator::Concentration StudyAggregator::concentration() const {
  const auto countForHalf = [](std::vector<std::uint64_t> totals) {
    std::uint64_t grand = 0;
    for (const std::uint64_t t : totals) grand += t;
    std::sort(totals.begin(), totals.end(), std::greater<>());
    std::uint64_t running = 0;
    std::size_t count = 0;
    for (const std::uint64_t t : totals) {
      if (running * 2 >= grand) break;
      running += t;
      ++count;
    }
    return count;
  };

  std::vector<std::uint64_t> appTotals;
  for (const auto& app : apps_) appTotals.push_back(app.total());
  std::vector<std::uint64_t> libTotals;
  for (const auto& [name, agg] : libraries_) libTotals.push_back(agg.total());
  std::vector<std::uint64_t> domainTotals;
  for (const auto& [name, agg] : domains_) domainTotals.push_back(agg.total());

  return {countForHalf(std::move(appTotals)), countForHalf(std::move(libTotals)),
          countForHalf(std::move(domainTotals))};
}

double StudyAggregator::meanBytesPerRun(const std::string& libCategory) const {
  if (apps_.empty()) return 0.0;
  const auto byCategory = transferByLibCategory();
  const auto it = byCategory.find(libCategory);
  if (it == byCategory.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(apps_.size());
}

StudyAccumulator::StudyAccumulator(StudyAggregator& study, FoldHook onFolded)
    : study_(study), onFolded_(std::move(onFolded)) {}

void StudyAccumulator::drainLocked() {
  while (true) {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first != next_) return;
    if (it->second.has_value()) {
      PendingApp app = std::move(*it->second);
      study_.addApp(app.run, app.flows);
      if (onFolded_) onFolded_(std::move(app.run));
      ++folded_;
    }
    pending_.erase(it);
    ++next_;
  }
}

void StudyAccumulator::add(std::size_t jobIndex, RunArtifacts&& run,
                           std::vector<FlowRecord>&& flows) {
  const std::scoped_lock lock(mutex_);
  pending_.emplace(jobIndex, PendingApp{std::move(run), std::move(flows)});
  drainLocked();
}

void StudyAccumulator::skip(std::size_t jobIndex) {
  const std::scoped_lock lock(mutex_);
  pending_.emplace(jobIndex, std::nullopt);
  drainLocked();
}

void StudyAccumulator::finish() {
  const std::scoped_lock lock(mutex_);
  // Tolerate gaps (a worker that died without reporting): fold whatever
  // arrived, still in index order.
  for (auto& [index, app] : pending_) {
    if (!app.has_value()) continue;
    study_.addApp(app->run, app->flows);
    if (onFolded_) onFolded_(std::move(app->run));
    ++folded_;
  }
  if (!pending_.empty()) next_ = pending_.rbegin()->first + 1;
  pending_.clear();
}

std::size_t StudyAccumulator::appsFolded() const {
  const std::scoped_lock lock(mutex_);
  return folded_;
}

std::size_t StudyAccumulator::pendingCount() const {
  const std::scoped_lock lock(mutex_);
  return pending_.size();
}

}  // namespace libspector::core
