// Everything one app run produces (paper §III-B): the packet capture, the
// Socket Supervisor's UDP reports, the method trace file and coverage, plus
// identifying metadata. Workers upload this bundle to the result database;
// the offline pipeline consumes it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/report.hpp"
#include "net/capture.hpp"

namespace libspector::core {

struct RunArtifacts {
  std::string apkSha256;
  std::string packageName;
  std::string appCategory;

  net::CaptureFile capture;
  std::vector<UdpReport> reports;
  std::vector<std::string> methodTraceFile;
  CoverageResult coverage;

  std::uint32_t monkeyEventsInjected = 0;
  std::uint64_t runDurationMs = 0;
  /// How many reports the Socket Supervisor *sent* during the run (the
  /// reliable side of the loss account: `reports` holds what survived the
  /// best-effort UDP channel, so emitted - delivered = lost in flight).
  std::uint64_t reportsEmitted = 0;

  /// Deterministic binary bundle (what a worker uploads to the central
  /// database and the offline pipeline later reads back).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static RunArtifacts deserialize(
      std::span<const std::uint8_t> bytes);
};

}  // namespace libspector::core
