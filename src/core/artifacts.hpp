// Everything one app run produces (paper §III-B): the packet capture, the
// Socket Supervisor's UDP reports, the method trace file and coverage, plus
// identifying metadata. Workers upload this bundle to the result database;
// the offline pipeline consumes it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/report.hpp"
#include "net/capture.hpp"

namespace libspector::core {

struct RunArtifacts {
  std::string apkSha256;
  std::string packageName;
  std::string appCategory;

  net::CaptureFile capture;
  std::vector<UdpReport> reports;
  std::vector<std::string> methodTraceFile;
  CoverageResult coverage;
  /// Keep-alive request boundaries the runtime observed (ordinal >= 1 per
  /// reused socket; empty outside the keep-alive scenario). Serialized as a
  /// version-gated v3 tail: an empty list emits the legacy v2 bytes, so
  /// bundles from scenario-off runs stay byte-identical to the seed.
  std::vector<RequestBoundary> requestBoundaries;

  std::uint32_t monkeyEventsInjected = 0;
  std::uint64_t runDurationMs = 0;
  /// How many reports the Socket Supervisor *sent* during the run (the
  /// reliable side of the loss account: `reports` holds what survived the
  /// best-effort UDP channel, so emitted - delivered = lost in flight).
  std::uint64_t reportsEmitted = 0;

  /// Deterministic binary bundle (what a worker uploads to the central
  /// database and the offline pipeline later reads back). Throws
  /// std::length_error if any field overflows its u32 length prefix —
  /// silent truncation would produce an undecodable bundle.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static RunArtifacts deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Exact per-apk delivery account over the best-effort report channel.
/// Computed by the ingest tier as a run finalizes and persisted alongside
/// the bundle, so a crash-recovered study keeps the original loss numbers.
struct ApkLossAccount {
  std::uint64_t reportsEmitted = 0;   // sender-side count (reliable path)
  std::uint64_t framesDelivered = 0;  // frames folded, duplicates included
  std::uint64_t uniqueDelivered = 0;  // distinct (workerId, sequence)
  std::uint64_t duplicated = 0;
  std::uint64_t outOfOrder = 0;
  std::uint64_t lost = 0;             // emitted - uniqueDelivered

  /// Account for a bundle whose channel history is gone (batch-saved
  /// databases): whatever survived in `reports` counts as delivered.
  [[nodiscard]] static ApkLossAccount fromArtifacts(const RunArtifacts& a);

  [[nodiscard]] bool operator==(const ApkLossAccount&) const = default;
};

/// Crash-safe framing for persisted `.spab` bundles.
///
/// The raw RunArtifacts encoding has no integrity protection of its own: a
/// collector crash mid-write leaves a truncated file, and a flipped bit on
/// disk can decode into a wrong-but-plausible bundle. The envelope reuses
/// the ReportFrame checksum discipline for the artifact store:
///
///   magic (u32) | version (u16) | crc32 (u32) | body
///   body = jobIndex (u64) | loss account (6 × u64)
///        | payloadSize (u64) | payload (RunArtifacts::serialize bytes)
///
/// - `jobIndex` is the run's dispatch index, which is what recovery needs
///   to replay bundles deterministically and re-run only the gaps;
///   kNoJobIndex marks bundles saved outside a checkpointed study.
/// - the crc32 covers the whole body, so truncation and bit flips are
///   rejected (quarantined) instead of mis-attributed.
struct SpabEnvelope {
  static constexpr std::uint16_t kVersion = 1;
  /// jobIndex sentinel for bundles persisted without a dispatch index.
  static constexpr std::uint64_t kNoJobIndex = ~0ULL;

  std::uint64_t jobIndex = kNoJobIndex;
  ApkLossAccount account;
  RunArtifacts artifacts;

  /// Frame one bundle for disk (static so callers can encode without
  /// copying the artifacts into an envelope first).
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      std::uint64_t jobIndex, const ApkLossAccount& account,
      const RunArtifacts& artifacts);

  /// Validates magic, version, checksum and payload length; throws
  /// util::DecodeError on any corruption or truncation.
  [[nodiscard]] static SpabEnvelope decode(std::span<const std::uint8_t> bytes);

  /// True when `bytes` starts with the envelope magic (cheap dispatch
  /// between framed and legacy raw bundles).
  [[nodiscard]] static bool looksFramed(
      std::span<const std::uint8_t> bytes) noexcept;
};

}  // namespace libspector::core
