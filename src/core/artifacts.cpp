#include "core/artifacts.hpp"

#include "util/bytes.hpp"

namespace libspector::core {

namespace {
constexpr std::uint32_t kMagic = 0x54524153;  // "SART"
// v2 appends reportsEmitted (the sender-side report count behind the
// ingest tier's loss accounting); v3 appends the request-boundary records
// of the keep-alive scenario. Both tails are version-gated, a bundle is
// written at the lowest version that can carry it, and v1/v2 bundles are
// still readable.
constexpr std::uint16_t kVersion = 3;

constexpr std::uint32_t kEnvelopeMagic = 0x42415053;  // "SPAB"
}  // namespace

std::vector<std::uint8_t> RunArtifacts::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  // Lowest version that can carry the bundle: scenario-off runs have no
  // boundaries and keep emitting the exact v2 bytes.
  w.u16(requestBoundaries.empty() ? std::uint16_t{2} : kVersion);
  w.str(apkSha256);
  w.str(packageName);
  w.str(appCategory);

  const auto captureBytes = capture.serialize();
  w.u32(util::checkedU32(captureBytes.size(), "RunArtifacts: capture"));
  w.raw(captureBytes);

  w.u32(util::checkedU32(reports.size(), "RunArtifacts: report count"));
  for (const auto& report : reports) {
    const auto datagram = report.encode();
    w.u32(util::checkedU32(datagram.size(), "RunArtifacts: report"));
    w.raw(datagram);
  }

  w.u32(util::checkedU32(methodTraceFile.size(), "RunArtifacts: trace count"));
  for (const auto& entry : methodTraceFile) w.str(entry);

  w.u64(coverage.coveredMethods);
  w.u64(coverage.totalMethods);
  w.u64(coverage.traceEntries);
  w.u32(monkeyEventsInjected);
  w.u64(runDurationMs);
  w.u64(reportsEmitted);
  if (!requestBoundaries.empty()) {
    w.u32(util::checkedU32(requestBoundaries.size(),
                           "RunArtifacts: boundary count"));
    for (const auto& boundary : requestBoundaries) {
      w.u64(boundary.socketId);
      w.u32(boundary.ordinal);
      w.u64(boundary.timestampMs);
    }
  }
  return w.take();
}

RunArtifacts RunArtifacts::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("RunArtifacts: bad magic");
  const std::uint16_t version = r.u16();
  if (version < 1 || version > kVersion)
    throw util::DecodeError("RunArtifacts: unsupported version");

  RunArtifacts artifacts;
  artifacts.apkSha256 = r.str();
  artifacts.packageName = r.str();
  artifacts.appCategory = r.str();

  const std::uint32_t captureSize = r.u32();
  artifacts.capture = net::CaptureFile::deserialize(r.view(captureSize));

  const std::uint32_t reportCount = r.countCheck(r.u32(), 4);
  artifacts.reports.reserve(reportCount);
  for (std::uint32_t i = 0; i < reportCount; ++i) {
    const std::uint32_t size = r.u32();
    artifacts.reports.push_back(UdpReport::decode(r.view(size)));
  }

  const std::uint32_t traceCount = r.countCheck(r.u32(), 4);
  artifacts.methodTraceFile.reserve(traceCount);
  for (std::uint32_t i = 0; i < traceCount; ++i)
    artifacts.methodTraceFile.push_back(r.str());

  artifacts.coverage.coveredMethods = r.u64();
  artifacts.coverage.totalMethods = r.u64();
  artifacts.coverage.traceEntries = r.u64();
  artifacts.monkeyEventsInjected = r.u32();
  artifacts.runDurationMs = r.u64();
  // v1 predates loss accounting: assume every delivered report was emitted.
  artifacts.reportsEmitted =
      version >= 2 ? r.u64() : artifacts.reports.size();
  if (version >= 3) {
    const std::uint32_t boundaryCount = r.countCheck(r.u32(), 20);
    artifacts.requestBoundaries.reserve(boundaryCount);
    for (std::uint32_t i = 0; i < boundaryCount; ++i) {
      RequestBoundary boundary;
      boundary.socketId = r.u64();
      boundary.ordinal = r.u32();
      boundary.timestampMs = r.u64();
      artifacts.requestBoundaries.push_back(boundary);
    }
  }
  if (!r.atEnd()) throw util::DecodeError("RunArtifacts: trailing bytes");
  return artifacts;
}

ApkLossAccount ApkLossAccount::fromArtifacts(const RunArtifacts& a) {
  ApkLossAccount account;
  account.reportsEmitted = a.reportsEmitted;
  account.framesDelivered = a.reports.size();
  account.uniqueDelivered = a.reports.size();
  account.lost = account.reportsEmitted > account.uniqueDelivered
                     ? account.reportsEmitted - account.uniqueDelivered
                     : 0;
  return account;
}

std::vector<std::uint8_t> SpabEnvelope::encode(std::uint64_t jobIndex,
                                               const ApkLossAccount& account,
                                               const RunArtifacts& artifacts) {
  util::ByteWriter body;
  body.u64(jobIndex);
  body.u64(account.reportsEmitted);
  body.u64(account.framesDelivered);
  body.u64(account.uniqueDelivered);
  body.u64(account.duplicated);
  body.u64(account.outOfOrder);
  body.u64(account.lost);
  const auto payload = artifacts.serialize();
  body.u64(payload.size());
  body.raw(payload);

  util::ByteWriter w;
  w.u32(kEnvelopeMagic);
  w.u16(kVersion);
  w.u32(util::crc32(body.data()));
  w.raw(body.data());
  return w.take();
}

SpabEnvelope SpabEnvelope::decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kEnvelopeMagic)
    throw util::DecodeError("SpabEnvelope: bad magic");
  if (r.u16() != kVersion)
    throw util::DecodeError("SpabEnvelope: unsupported version");
  const std::uint32_t checksum = r.u32();
  if (util::crc32(bytes.subspan(4 + 2 + 4)) != checksum)
    throw util::DecodeError("SpabEnvelope: checksum mismatch");

  SpabEnvelope envelope;
  envelope.jobIndex = r.u64();
  envelope.account.reportsEmitted = r.u64();
  envelope.account.framesDelivered = r.u64();
  envelope.account.uniqueDelivered = r.u64();
  envelope.account.duplicated = r.u64();
  envelope.account.outOfOrder = r.u64();
  envelope.account.lost = r.u64();
  const std::uint64_t payloadSize = r.u64();
  if (payloadSize != r.remaining())
    throw util::DecodeError("SpabEnvelope: payload length mismatch");
  envelope.artifacts =
      RunArtifacts::deserialize(r.view(static_cast<std::size_t>(payloadSize)));
  return envelope;
}

bool SpabEnvelope::looksFramed(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= std::uint32_t{bytes[i]} << (8 * i);
  return magic == kEnvelopeMagic;
}

}  // namespace libspector::core
