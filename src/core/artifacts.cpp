#include "core/artifacts.hpp"

#include "util/bytes.hpp"

namespace libspector::core {

namespace {
constexpr std::uint32_t kMagic = 0x54524153;  // "SART"
// v2 appends reportsEmitted (the sender-side report count behind the
// ingest tier's loss accounting); v1 bundles are still readable.
constexpr std::uint16_t kVersion = 2;
}  // namespace

std::vector<std::uint8_t> RunArtifacts::serialize() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(apkSha256);
  w.str(packageName);
  w.str(appCategory);

  const auto captureBytes = capture.serialize();
  w.u32(static_cast<std::uint32_t>(captureBytes.size()));
  w.raw(captureBytes);

  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const auto& report : reports) {
    const auto datagram = report.encode();
    w.u32(static_cast<std::uint32_t>(datagram.size()));
    w.raw(datagram);
  }

  w.u32(static_cast<std::uint32_t>(methodTraceFile.size()));
  for (const auto& entry : methodTraceFile) w.str(entry);

  w.u64(coverage.coveredMethods);
  w.u64(coverage.totalMethods);
  w.u64(coverage.traceEntries);
  w.u32(monkeyEventsInjected);
  w.u64(runDurationMs);
  w.u64(reportsEmitted);
  return w.take();
}

RunArtifacts RunArtifacts::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.u32() != kMagic) throw util::DecodeError("RunArtifacts: bad magic");
  const std::uint16_t version = r.u16();
  if (version < 1 || version > kVersion)
    throw util::DecodeError("RunArtifacts: unsupported version");

  RunArtifacts artifacts;
  artifacts.apkSha256 = r.str();
  artifacts.packageName = r.str();
  artifacts.appCategory = r.str();

  const std::uint32_t captureSize = r.u32();
  artifacts.capture = net::CaptureFile::deserialize(r.view(captureSize));

  const std::uint32_t reportCount = r.countCheck(r.u32(), 4);
  artifacts.reports.reserve(reportCount);
  for (std::uint32_t i = 0; i < reportCount; ++i) {
    const std::uint32_t size = r.u32();
    artifacts.reports.push_back(UdpReport::decode(r.view(size)));
  }

  const std::uint32_t traceCount = r.countCheck(r.u32(), 4);
  artifacts.methodTraceFile.reserve(traceCount);
  for (std::uint32_t i = 0; i < traceCount; ++i)
    artifacts.methodTraceFile.push_back(r.str());

  artifacts.coverage.coveredMethods = r.u64();
  artifacts.coverage.totalMethods = r.u64();
  artifacts.coverage.traceEntries = r.u64();
  artifacts.monkeyEventsInjected = r.u32();
  artifacts.runDurationMs = r.u64();
  // v1 predates loss accounting: assume every delivered report was emitted.
  artifacts.reportsEmitted =
      version >= 2 ? r.u64() : artifacts.reports.size();
  if (!r.atEnd()) throw util::DecodeError("RunArtifacts: trailing bytes");
  return artifacts;
}

}  // namespace libspector::core
