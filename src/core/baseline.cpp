#include "core/baseline.hpp"

#include <algorithm>
#include <map>

#include "util/strings.hpp"

namespace libspector::core {

UserAgentAdClassifier::UserAgentAdClassifier() {
  // Markers for the major ad SDKs' identifying User-Agent strings.
  for (const char* marker :
       {"googleads", "fbaudiencenetwork", "mopub", "chartboost", "vungle",
        "applovin", "ironsource", "adcolony", "inmobi", "unityads", "tapjoy",
        "startapp", "an-sdk"}) {
    markers_.emplace_back(marker);
  }
}

void UserAgentAdClassifier::addMarker(std::string marker) {
  markers_.push_back(util::toLower(marker));
}

bool UserAgentAdClassifier::isAdTraffic(const net::HttpExchange& exchange) const {
  const std::string ua = util::toLower(exchange.userAgent);
  return std::any_of(markers_.begin(), markers_.end(), [&](const std::string& m) {
    return util::contains(ua, m);
  });
}

HostnameAdClassifier::HostnameAdClassifier() {
  // Hostname fragments an ad-domain list would carry.
  for (const char* pattern :
       {"ads", "adserv", "advert", "doubleclick", "admob", "adcolony",
        "unityads", "mopub", "applovin", "vungle", "chartboost"}) {
    patterns_.emplace_back(pattern);
  }
}

void HostnameAdClassifier::addPattern(std::string pattern) {
  patterns_.push_back(util::toLower(pattern));
}

bool HostnameAdClassifier::isAdTraffic(std::string_view host) const {
  const std::string lowered = util::toLower(host);
  return std::any_of(patterns_.begin(), patterns_.end(),
                     [&](const std::string& p) { return util::contains(lowered, p); });
}

std::vector<JoinedExchange> joinExchangesToFlows(
    std::span<const FlowRecord> flows, const net::CaptureFile& capture) {
  // Flows per socket pair, ordered by connect time (attribution windowing).
  std::map<net::SocketPair, std::vector<const FlowRecord*>> byPair;
  for (const FlowRecord& flow : flows) byPair[flow.socketPair].push_back(&flow);
  for (auto& [pair, list] : byPair) {
    std::sort(list.begin(), list.end(),
              [](const FlowRecord* a, const FlowRecord* b) {
                return a->connectTimeMs < b->connectTimeMs;
              });
  }

  std::vector<JoinedExchange> joined;
  joined.reserve(capture.httpExchanges().size());
  for (const auto& exchange : capture.httpExchanges()) {
    const auto it = byPair.find(exchange.pair);
    if (it == byPair.end()) continue;
    // The owning flow is the latest one connected at or before the
    // exchange (allowing a small handshake slack).
    const FlowRecord* owner = nullptr;
    for (const FlowRecord* flow : it->second) {
      if (flow->connectTimeMs <= exchange.timestampMs + 2000) owner = flow;
    }
    if (owner != nullptr) joined.push_back({&exchange, owner});
  }
  return joined;
}

double BaselineScore::precision() const {
  const auto flagged = truePositives + falsePositives;
  return flagged == 0 ? 0.0
                      : static_cast<double>(truePositives) /
                            static_cast<double>(flagged);
}

double BaselineScore::recall() const {
  const auto positives = truePositives + falseNegatives;
  return positives == 0 ? 0.0
                        : static_cast<double>(truePositives) /
                              static_cast<double>(positives);
}

double BaselineScore::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

BaselineScore scoreBaseline(
    std::span<const JoinedExchange> joined,
    const std::function<bool(const FlowRecord&)>& isAdTruth,
    const std::function<bool(const JoinedExchange&)>& detect) {
  BaselineScore score;
  for (const JoinedExchange& entry : joined) {
    const bool truth = isAdTruth(*entry.flow);
    const bool flagged = detect(entry);
    if (truth && flagged) ++score.truePositives;
    else if (!truth && flagged) ++score.falsePositives;
    else if (truth && !flagged) {
      ++score.falseNegatives;
      score.missedBytes += entry.flow->sentBytes + entry.flow->recvBytes;
    } else {
      ++score.trueNegatives;
    }
  }
  return score;
}

}  // namespace libspector::core
