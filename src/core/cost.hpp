// User cost estimation (paper §IV-D).
//
// Two costs of library traffic to end users: money (metered data plans) and
// energy.  The energy model reproduces the paper's arithmetic: Vallina et
// al.'s ad-library current drain and content statistics, Rosen et al.'s
// Pareto background-transmission assumption, and a typical 11.55 Wh /
// 3000 mAh battery, yielding ≈5.1e-4 J per transmitted byte.  (The paper
// prints "5×10⁻³ J/B", but its own worked example — 15.6 MB → 7794 J —
// matches 5e-4; we follow the arithmetic.)
#pragma once

namespace libspector::core {

/// Metered data plan (Google Fi 2019: $10/GB).
struct DataPlanModel {
  double usdPerGB = 10.0;

  /// Dollars per hour of app usage, given the mean bytes one library
  /// category transfers during a run of `runMinutes` (the paper's 8-minute
  /// experiments).
  [[nodiscard]] double usdPerHour(double bytesPerRun, double runMinutes) const;
};

/// Advertisement energy model parameters (Vallina et al., Rosen et al.).
struct EnergyModel {
  double batteryWh = 11.55;
  double batteryMah = 3000.0;
  double adActiveCurrentMa = 229.0;  // mean drain of 4 major ad libraries
  double idleCurrentMa = 144.6;
  double adContentBytesPerDay = 31.0 * 1024;  // 31 kB/day of ad content
  double activeDownloadSecPerMin = 9.3;       // ad download activity
  double paretoForegroundFraction = 0.95;     // P(X<=5 min) under Pareto
  double assumedActiveMinutes = 5.0;          // Rosen et al. 80/20 cutoff

  [[nodiscard]] double batteryVoltage() const;        // ~3.85 V
  [[nodiscard]] double adActivePowerWatts() const;    // ~0.325 W
  [[nodiscard]] double adThroughputBytesPerSec() const;  // ~635 B/s
  [[nodiscard]] double joulesPerByte() const;         // ~5.1e-4 J/B

  /// Energy to transmit `bytes` through an ad library, in joules.
  [[nodiscard]] double energyJoules(double bytes) const;
  /// Same, as a fraction of a full battery (0.187 for the paper's 15.6 MB).
  [[nodiscard]] double batteryFraction(double bytes) const;
};

/// A row of the §IV-D cost table.
struct CostEstimate {
  double bytesPerRun = 0.0;
  double usdPerHour = 0.0;
  double energyJoules = 0.0;
  double batteryFraction = 0.0;
};

class CostModel {
 public:
  CostModel(DataPlanModel plan, EnergyModel energy, double runMinutes)
      : plan_(plan), energy_(energy), runMinutes_(runMinutes) {}

  [[nodiscard]] CostEstimate estimate(double bytesPerRun) const;

  [[nodiscard]] const DataPlanModel& plan() const noexcept { return plan_; }
  [[nodiscard]] const EnergyModel& energy() const noexcept { return energy_; }

 private:
  DataPlanModel plan_;
  EnergyModel energy_;
  double runMinutes_;
};

}  // namespace libspector::core
