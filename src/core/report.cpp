#include "core/report.hpp"

#include "util/bytes.hpp"

namespace libspector::core {

namespace {
constexpr std::uint32_t kMagic = 0x52505355;       // "USPR"
constexpr std::uint32_t kFrameMagic = 0x4652534C;  // "LSRF"
}

std::vector<std::uint8_t> UdpReport::encode() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.str(apkSha256);
  w.u32(socketPair.src.ip.value());
  w.u16(socketPair.src.port);
  w.u32(socketPair.dst.ip.value());
  w.u16(socketPair.dst.port);
  w.u64(timestampMs);
  w.u32(static_cast<std::uint32_t>(stackSignatures.size()));
  for (const auto& signature : stackSignatures) w.str(signature);
  return w.take();
}

UdpReport UdpReport::decode(std::span<const std::uint8_t> datagram) {
  util::ByteReader r(datagram);
  if (r.u32() != kMagic) throw util::DecodeError("UdpReport: bad magic");
  UdpReport report;
  report.apkSha256 = r.str();
  report.socketPair.src.ip = net::Ipv4Addr(r.u32());
  report.socketPair.src.port = r.u16();
  report.socketPair.dst.ip = net::Ipv4Addr(r.u32());
  report.socketPair.dst.port = r.u16();
  report.timestampMs = r.u64();
  const std::uint32_t frames = r.countCheck(r.u32(), 4);
  report.stackSignatures.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i)
    report.stackSignatures.push_back(r.str());
  if (!r.atEnd()) throw util::DecodeError("UdpReport: trailing bytes");
  return report;
}

std::vector<std::uint8_t> ReportFrame::encode() const {
  util::ByteWriter body;
  body.u32(workerId);
  body.u64(sequence);
  body.u64(util::fnv1a64(report.apkSha256));
  const auto payload = report.encode();
  body.str({reinterpret_cast<const char*>(payload.data()), payload.size()});

  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(kVersion);
  w.u32(util::crc32(body.data()));
  w.raw(body.data());
  return w.take();
}

namespace {

/// Shared prefix validation for decode() and peek(): checks magic, version
/// and checksum, then positions a reader at the body start.
util::ByteReader openFrameBody(std::span<const std::uint8_t> datagram) {
  util::ByteReader r(datagram);
  if (r.u32() != kFrameMagic) throw util::DecodeError("ReportFrame: bad magic");
  const std::uint8_t version = r.u8();
  if (version != ReportFrame::kVersion)
    throw util::DecodeError("ReportFrame: unsupported version");
  const std::uint32_t checksum = r.u32();
  const std::span<const std::uint8_t> body = datagram.subspan(4 + 1 + 4);
  if (util::crc32(body) != checksum)
    throw util::DecodeError("ReportFrame: checksum mismatch");
  return r;
}

}  // namespace

ReportFrame ReportFrame::decode(std::span<const std::uint8_t> datagram) {
  util::ByteReader r = openFrameBody(datagram);
  ReportFrame frame;
  frame.workerId = r.u32();
  frame.sequence = r.u64();
  const std::uint64_t shaKey = r.u64();
  const std::uint32_t payloadSize = r.u32();
  frame.report = UdpReport::decode(r.view(payloadSize));
  if (!r.atEnd()) throw util::DecodeError("ReportFrame: trailing bytes");
  if (shaKey != util::fnv1a64(frame.report.apkSha256))
    throw util::DecodeError("ReportFrame: routing key does not match payload");
  return frame;
}

ReportFrame::Header ReportFrame::peek(std::span<const std::uint8_t> datagram) {
  util::ByteReader r = openFrameBody(datagram);
  Header header;
  header.workerId = r.u32();
  header.sequence = r.u64();
  header.shaKey = r.u64();
  return header;
}

bool ReportFrame::looksFramed(std::span<const std::uint8_t> datagram) noexcept {
  if (datagram.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= std::uint32_t{datagram[i]} << (8 * i);
  return magic == kFrameMagic;
}

UdpReport decodeReportDatagram(std::span<const std::uint8_t> datagram) {
  if (ReportFrame::looksFramed(datagram))
    return ReportFrame::decode(datagram).report;
  return UdpReport::decode(datagram);
}

}  // namespace libspector::core
