#include "core/report.hpp"

#include "util/bytes.hpp"

namespace libspector::core {

namespace {
constexpr std::uint32_t kMagic = 0x52505355;       // "USPR"
constexpr std::uint32_t kFrameMagic = 0x4652534C;  // "LSRF"

/// Shared prefix validation for decode() and peek(): checks magic, version
/// (1, 2 and 3 share this header layout) and checksum, then positions a
/// reader at the body start.
util::ByteReader openFrameBody(std::span<const std::uint8_t> datagram,
                               std::uint8_t& version) {
  util::ByteReader r(datagram);
  if (r.u32() != kFrameMagic) throw util::DecodeError("ReportFrame: bad magic");
  version = r.u8();
  if (version < ReportFrame::kVersion || version > ReportFrame::kMaxVersion)
    throw util::DecodeError("ReportFrame: unsupported version");
  const std::uint32_t checksum = r.u32();
  const std::span<const std::uint8_t> body = datagram.subspan(4 + 1 + 4);
  if (util::crc32(body) != checksum)
    throw util::DecodeError("ReportFrame: checksum mismatch");
  return r;
}

/// Wrap a finished body as a framed datagram.
std::vector<std::uint8_t> sealFrame(std::uint8_t version,
                                    const util::ByteWriter& body) {
  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(version);
  w.u32(util::crc32(body.data()));
  w.raw(body.data());
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> UdpReport::encode() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.str(apkSha256);
  w.u32(socketPair.src.ip.value());
  w.u16(socketPair.src.port);
  w.u32(socketPair.dst.ip.value());
  w.u16(socketPair.dst.port);
  w.u64(timestampMs);
  w.u32(static_cast<std::uint32_t>(stackSignatures.size()));
  for (const auto& signature : stackSignatures) w.str(signature);
  // Optional trailing field: a zero ordinal (every report outside the
  // keep-alive scenario) keeps the legacy encoding byte for byte.
  if (requestOrdinal != 0) w.u32(requestOrdinal);
  return w.take();
}

UdpReport UdpReport::decode(std::span<const std::uint8_t> datagram) {
  util::ByteReader r(datagram);
  if (r.u32() != kMagic) throw util::DecodeError("UdpReport: bad magic");
  UdpReport report;
  report.apkSha256 = r.str();
  report.socketPair.src.ip = net::Ipv4Addr(r.u32());
  report.socketPair.src.port = r.u16();
  report.socketPair.dst.ip = net::Ipv4Addr(r.u32());
  report.socketPair.dst.port = r.u16();
  report.timestampMs = r.u64();
  const std::uint32_t frames = r.countCheck(r.u32(), 4);
  report.stackSignatures.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i)
    report.stackSignatures.push_back(r.str());
  if (!r.atEnd()) report.requestOrdinal = r.u32();
  if (!r.atEnd()) throw util::DecodeError("UdpReport: trailing bytes");
  return report;
}

std::vector<std::uint8_t> ReportFrame::encode() const {
  util::ByteWriter body;
  body.u32(workerId);
  body.u64(sequence);
  body.u64(util::fnv1a64(report.apkSha256));
  const auto payload = report.encode();
  body.str({reinterpret_cast<const char*>(payload.data()), payload.size()});

  util::ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(kVersion);
  w.u32(util::crc32(body.data()));
  w.raw(body.data());
  return w.take();
}

std::vector<std::uint8_t> DictReportFrame::encode() const {
  util::ByteWriter body;
  body.u32(workerId);
  body.u64(sequence);
  body.u64(util::fnv1a64(apkSha256));
  body.u32(util::checkedU32(defs.size(), "DictReportFrame: defs"));
  for (const auto& [id, signature] : defs) {
    body.u32(id);
    body.str(signature);
  }
  body.str(apkSha256);
  body.u32(socketPair.src.ip.value());
  body.u16(socketPair.src.port);
  body.u32(socketPair.dst.ip.value());
  body.u16(socketPair.dst.port);
  body.u64(timestampMs);
  body.u32(util::checkedU32(signatureIds.size(), "DictReportFrame: frames"));
  for (const std::uint32_t id : signatureIds) body.u32(id);
  // Optional trailing field (see UdpReport::encode): zero keeps the legacy
  // v3 bytes; the crc32 in sealFrame covers it when present.
  if (requestOrdinal != 0) body.u32(requestOrdinal);
  return sealFrame(ReportFrame::kDictVersion, body);
}

DictReportFrame DictReportFrame::decode(
    std::span<const std::uint8_t> datagram) {
  std::uint8_t version = 0;
  util::ByteReader r = openFrameBody(datagram, version);
  if (version != ReportFrame::kDictVersion)
    throw util::DecodeError("DictReportFrame: not a v3 frame");
  DictReportFrame frame;
  frame.workerId = r.u32();
  frame.sequence = r.u64();
  const std::uint64_t shaKey = r.u64();
  const std::uint32_t defCount = r.countCheck(r.u32(), 8);
  frame.defs.reserve(defCount);
  for (std::uint32_t i = 0; i < defCount; ++i) {
    const std::uint32_t id = r.u32();
    frame.defs.emplace_back(id, r.str());
  }
  frame.apkSha256 = r.str();
  frame.socketPair.src.ip = net::Ipv4Addr(r.u32());
  frame.socketPair.src.port = r.u16();
  frame.socketPair.dst.ip = net::Ipv4Addr(r.u32());
  frame.socketPair.dst.port = r.u16();
  frame.timestampMs = r.u64();
  const std::uint32_t frames = r.countCheck(r.u32(), 4);
  frame.signatureIds.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i) frame.signatureIds.push_back(r.u32());
  if (!r.atEnd()) frame.requestOrdinal = r.u32();
  if (!r.atEnd()) throw util::DecodeError("DictReportFrame: trailing bytes");
  if (shaKey != util::fnv1a64(frame.apkSha256))
    throw util::DecodeError(
        "DictReportFrame: routing key does not match payload");
  return frame;
}

std::vector<std::uint8_t> DictFrameEncoder::encode(std::uint64_t sequence,
                                                   const UdpReport& report) {
  DictReportFrame frame;
  frame.workerId = workerId_;
  frame.sequence = sequence;
  frame.apkSha256 = report.apkSha256;
  frame.socketPair = report.socketPair;
  frame.timestampMs = report.timestampMs;
  frame.requestOrdinal = report.requestOrdinal;
  frame.signatureIds.reserve(report.stackSignatures.size());
  for (const auto& signature : report.stackSignatures) {
    auto it = ids_.find(std::string_view(signature));
    if (it == ids_.end()) {
      const auto id = static_cast<std::uint32_t>(ids_.size());
      it = ids_.emplace(signature, id).first;
      frame.defs.emplace_back(id, signature);
    }
    frame.signatureIds.push_back(it->second);
  }
  return frame.encode();
}

UdpReport ReportStreamDecoder::decode(std::span<const std::uint8_t> datagram) {
  if (!ReportFrame::looksFramed(datagram)) return UdpReport::decode(datagram);
  const ReportFrame::Header header = ReportFrame::peek(datagram);
  if (header.version != ReportFrame::kDictVersion)
    return ReportFrame::decode(datagram).report;
  const DictReportFrame frame = DictReportFrame::decode(datagram);
  auto& dict = dictByWorker_[frame.workerId];
  for (const auto& [id, signature] : frame.defs) dict[id] = signature;
  UdpReport report;
  report.apkSha256 = frame.apkSha256;
  report.socketPair = frame.socketPair;
  report.timestampMs = frame.timestampMs;
  report.requestOrdinal = frame.requestOrdinal;
  report.stackSignatures.reserve(frame.signatureIds.size());
  for (const std::uint32_t id : frame.signatureIds) {
    const auto it = dict.find(id);
    if (it == dict.end())
      throw util::DecodeError(
          "ReportStreamDecoder: unresolved dictionary id on in-order stream");
    report.stackSignatures.push_back(it->second);
  }
  return report;
}

ReportFrame ReportFrame::decode(std::span<const std::uint8_t> datagram) {
  std::uint8_t version = 0;
  util::ByteReader r = openFrameBody(datagram, version);
  if (version == kDictVersion)
    throw util::DecodeError(
        "ReportFrame: v3 frame needs dictionary state (DictReportFrame)");
  ReportFrame frame;
  frame.workerId = r.u32();
  frame.sequence = r.u64();
  const std::uint64_t shaKey = r.u64();
  const std::uint32_t payloadSize = r.u32();
  frame.report = UdpReport::decode(r.view(payloadSize));
  if (!r.atEnd()) throw util::DecodeError("ReportFrame: trailing bytes");
  if (shaKey != util::fnv1a64(frame.report.apkSha256))
    throw util::DecodeError("ReportFrame: routing key does not match payload");
  return frame;
}

ReportFrame::Header ReportFrame::peek(std::span<const std::uint8_t> datagram) {
  Header header;
  util::ByteReader r = openFrameBody(datagram, header.version);
  header.workerId = r.u32();
  header.sequence = r.u64();
  header.shaKey = r.u64();
  return header;
}

bool ReportFrame::looksFramed(std::span<const std::uint8_t> datagram) noexcept {
  if (datagram.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= std::uint32_t{datagram[i]} << (8 * i);
  return magic == kFrameMagic;
}

UdpReport decodeReportDatagram(std::span<const std::uint8_t> datagram) {
  if (ReportFrame::looksFramed(datagram))
    return ReportFrame::decode(datagram).report;
  return UdpReport::decode(datagram);
}

}  // namespace libspector::core
