#include "core/report.hpp"

#include "util/bytes.hpp"

namespace libspector::core {

namespace {
constexpr std::uint32_t kMagic = 0x52505355;  // "USPR"
}

std::vector<std::uint8_t> UdpReport::encode() const {
  util::ByteWriter w;
  w.u32(kMagic);
  w.str(apkSha256);
  w.u32(socketPair.src.ip.value());
  w.u16(socketPair.src.port);
  w.u32(socketPair.dst.ip.value());
  w.u16(socketPair.dst.port);
  w.u64(timestampMs);
  w.u32(static_cast<std::uint32_t>(stackSignatures.size()));
  for (const auto& signature : stackSignatures) w.str(signature);
  return w.take();
}

UdpReport UdpReport::decode(std::span<const std::uint8_t> datagram) {
  util::ByteReader r(datagram);
  if (r.u32() != kMagic) throw util::DecodeError("UdpReport: bad magic");
  UdpReport report;
  report.apkSha256 = r.str();
  report.socketPair.src.ip = net::Ipv4Addr(r.u32());
  report.socketPair.src.port = r.u16();
  report.socketPair.dst.ip = net::Ipv4Addr(r.u32());
  report.socketPair.dst.port = r.u16();
  report.timestampMs = r.u64();
  const std::uint32_t frames = r.countCheck(r.u32(), 4);
  report.stackSignatures.reserve(frames);
  for (std::uint32_t i = 0; i < frames; ++i)
    report.stackSignatures.push_back(r.str());
  if (!r.atEnd()) throw util::DecodeError("UdpReport: trailing bytes");
  return report;
}

}  // namespace libspector::core
