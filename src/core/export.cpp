#include "core/export.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/cost.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace libspector::core {

std::string csvField(std::string_view value) {
  const bool needsQuoting =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needsQuoting) return std::string(value);
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void writeFig2Csv(const StudyAggregator& study, std::ostream& out) {
  out << "app_category,library_category,bytes\n";
  for (const auto& [appCategory, row] : study.transferByAppAndLibCategory()) {
    for (const auto& [libCategory, bytes] : row) {
      out << csvField(appCategory) << ',' << csvField(libCategory) << ','
          << bytes << '\n';
    }
  }
}

void writeTopLibrariesCsv(const StudyAggregator& study, std::size_t n,
                          std::ostream& out) {
  out << "rank,level,library,category,bytes\n";
  std::size_t rank = 1;
  for (const auto& entry : study.topOriginLibraries(n)) {
    out << rank++ << ",origin," << csvField(entry.name) << ','
        << csvField(entry.category) << ',' << entry.bytes << '\n';
  }
  rank = 1;
  for (const auto& entry : study.topTwoLevelLibraries(n)) {
    out << rank++ << ",two-level," << csvField(entry.name) << ','
        << csvField(entry.category) << ',' << entry.bytes << '\n';
  }
}

void writeCdfCsv(const StudyAggregator& study, std::ostream& out) {
  using Entity = StudyAggregator::Entity;
  out << "series,bytes,fraction\n";
  const auto emit = [&](const char* series, std::vector<double> values) {
    for (const auto& point : util::empiricalCdf(std::move(values), 128))
      out << series << ',' << point.value << ',' << point.fraction << '\n';
  };
  emit("app_sent", study.sentTotals(Entity::App));
  emit("app_recv", study.recvTotals(Entity::App));
  emit("lib_sent", study.sentTotals(Entity::Library));
  emit("lib_recv", study.recvTotals(Entity::Library));
  emit("dns_sent", study.sentTotals(Entity::Domain));
  emit("dns_recv", study.recvTotals(Entity::Domain));
}

void writeFlowRatiosCsv(const StudyAggregator& study, std::ostream& out) {
  using Entity = StudyAggregator::Entity;
  out << "series,index,ratio\n";
  const auto emit = [&](const char* series, Entity entity) {
    const auto stats = study.flowRatios(entity);
    for (std::size_t i = 0; i < stats.ratios.size(); ++i)
      out << series << ',' << i << ',' << stats.ratios[i] << '\n';
  };
  emit("apps", Entity::App);
  emit("libs", Entity::Library);
  emit("dns", Entity::Domain);
}

void writeAntSharesCsv(const StudyAggregator& study, std::ostream& out) {
  const auto ant = study.antStats();
  out << "index,ant_share,cl_share\n";
  for (std::size_t i = 0; i < ant.antShare.size(); ++i) {
    out << i << ',' << ant.antShare[i] << ','
        << (i < ant.clShare.size() ? ant.clShare[i] : 0.0) << '\n';
  }
}

void writeCategoryAveragesCsv(const StudyAggregator& study, std::ostream& out) {
  out << "kind,category,avg_bytes\n";
  for (const auto& [category, avg] : study.avgBytesPerLibraryByCategory())
    out << "library," << csvField(category) << ',' << avg << '\n';
  for (const auto& [category, avg] : study.avgBytesPerDomainByCategory())
    out << "domain," << csvField(category) << ',' << avg << '\n';
  for (const auto& [category, avg] : study.avgBytesPerAppByCategory())
    out << "app," << csvField(category) << ',' << avg << '\n';
}

void writeHeatmapCsv(const StudyAggregator& study, std::ostream& out) {
  out << "library_category,domain_category,bytes\n";
  for (const auto& [libCategory, row] : study.libraryDomainHeatmap()) {
    for (const auto& [domainCategory, bytes] : row) {
      out << csvField(libCategory) << ',' << csvField(domainCategory) << ','
          << bytes << '\n';
    }
  }
}

void writeCoverageCsv(const StudyAggregator& study, std::ostream& out) {
  out << "index,coverage\n";
  const auto coverage = study.coverageStats();
  for (std::size_t i = 0; i < coverage.perApp.size(); ++i)
    out << i << ',' << coverage.perApp[i] << '\n';
}

void writeStudyReport(const StudyAggregator& study, std::ostream& out) {
  const auto totals = study.totals();
  const double total = static_cast<double>(totals.totalBytes);

  out << "# Libspector study report\n\n";
  out << "## Totals (§IV-A)\n\n";
  out << "- apps analyzed: " << totals.appCount << "\n";
  out << "- transferred: " << util::humanBytes(total) << " (received "
      << util::humanBytes(static_cast<double>(totals.recvBytes)) << " / sent "
      << util::humanBytes(static_cast<double>(totals.sentBytes)) << ")\n";
  out << "- flows (sockets): " << totals.flowCount << "\n";
  out << "- origin-libraries: " << totals.originLibraryCount
      << ", 2-level libraries: " << totals.twoLevelLibraryCount
      << ", DNS domains: " << totals.domainCount << "\n";
  if (totals.unattributedBytes > 0)
    out << "- unattributed TCP payload (lost context reports): "
        << util::humanBytes(static_cast<double>(totals.unattributedBytes))
        << "\n";

  out << "\n## Transfer share by origin-library category (Fig. 2)\n\n";
  out << "| category | share | bytes |\n|---|---|---|\n";
  for (const auto& [category, bytes] : study.transferByLibCategory()) {
    char share[32];
    std::snprintf(share, sizeof(share), "%.2f%%",
                  total > 0 ? 100.0 * static_cast<double>(bytes) / total : 0.0);
    out << "| " << category << " | " << share << " | "
        << util::humanBytes(static_cast<double>(bytes)) << " |\n";
  }

  out << "\n## Top origin-libraries (Fig. 3)\n\n";
  for (const auto& entry : study.topOriginLibraries(10))
    out << "- `" << entry.name << "` — "
        << util::humanBytes(static_cast<double>(entry.bytes)) << " ["
        << entry.category << "]\n";

  const auto ant = study.antStats();
  out << "\n## AnT prevalence (Fig. 6)\n\n";
  if (ant.appsWithTraffic > 0) {
    const double withTraffic = static_cast<double>(ant.appsWithTraffic);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "- AnT-only apps: %.1f%%, some AnT: %.1f%%, AnT-free: %.1f%%\n",
                  100.0 * static_cast<double>(ant.antOnlyApps) / withTraffic,
                  100.0 * static_cast<double>(ant.someAntApps) / withTraffic,
                  100.0 * static_cast<double>(ant.noAntApps) / withTraffic);
    out << line;
    std::snprintf(line, sizeof(line),
                  "- flow-ratio aggressiveness: AnT %.1fx vs common %.1fx\n",
                  ant.antMeanFlowRatio, ant.clMeanFlowRatio);
    out << line;
  }

  out << "\n## Flow ratios (Fig. 5)\n\n";
  char ratios[160];
  std::snprintf(ratios, sizeof(ratios),
                "- mean received/sent: apps %.1fx, libraries %.1fx, domains %.1fx\n",
                study.flowRatios(StudyAggregator::Entity::App).mean,
                study.flowRatios(StudyAggregator::Entity::Library).mean,
                study.flowRatios(StudyAggregator::Entity::Domain).mean);
  out << ratios;

  const auto coverage = study.coverageStats();
  out << "\n## Method coverage (§IV-C)\n\n";
  char cov[160];
  std::snprintf(cov, sizeof(cov),
                "- mean coverage %.2f%% over %.0f methods/apk (%.1f%% of apps above the mean)\n",
                100.0 * coverage.mean, coverage.meanMethodsPerApk,
                100.0 * coverage.fractionAboveMean);
  out << cov;

  out << "\n## Context vs endpoints (Fig. 9 / §IV-E)\n\n";
  char cdn[120];
  std::snprintf(cdn, sizeof(cdn),
                "- known-library traffic on CDN domains: %.1f%% (invisible to "
                "DNS-only attribution)\n",
                100.0 * study.knownLibraryCdnShare());
  out << cdn;

  out << "\n## User cost (§IV-D, 8-minute sessions, $10/GB)\n\n";
  const CostModel model(DataPlanModel{}, EnergyModel{}, 8.0);
  out << "| category | bytes/run | $/hour | battery |\n|---|---|---|---|\n";
  for (const char* category :
       {"Advertisement", "Mobile Analytics", "Game Engine", "Social Network"}) {
    const auto estimate = model.estimate(study.meanBytesPerRun(category));
    char row[200];
    std::snprintf(row, sizeof(row), "| %s | %s | $%.3f | %.2f%% |\n", category,
                  util::humanBytes(estimate.bytesPerRun).c_str(),
                  estimate.usdPerHour, 100.0 * estimate.batteryFraction);
    out << row;
  }
}

std::size_t exportStudyCsv(const StudyAggregator& study,
                           const std::string& directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const auto write = [&](const char* name, const auto& writer) {
    std::ofstream out(fs::path(directory) / name, std::ios::trunc);
    if (!out) throw std::runtime_error(std::string("exportStudyCsv: cannot write ") + name);
    writer(out);
  };
  write("fig2_categories.csv", [&](std::ostream& o) { writeFig2Csv(study, o); });
  write("fig3_top_libraries.csv",
        [&](std::ostream& o) { writeTopLibrariesCsv(study, 25, o); });
  write("fig4_cdf.csv", [&](std::ostream& o) { writeCdfCsv(study, o); });
  write("fig5_ratios.csv", [&](std::ostream& o) { writeFlowRatiosCsv(study, o); });
  write("fig6_ant_shares.csv", [&](std::ostream& o) { writeAntSharesCsv(study, o); });
  write("fig7_category_averages.csv",
        [&](std::ostream& o) { writeCategoryAveragesCsv(study, o); });
  write("fig9_heatmap.csv", [&](std::ostream& o) { writeHeatmapCsv(study, o); });
  write("fig10_coverage.csv", [&](std::ostream& o) { writeCoverageCsv(study, o); });
  return 8;
}

}  // namespace libspector::core
