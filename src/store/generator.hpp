// The synthetic app-store world (substitute for Google Play + AndroZoo).
//
// Construction builds the *world*: every remote endpoint (with ground-truth
// generic categories driving the VirusTotal simulator), and a lightweight
// plan for each app — category, archetype, bundled libraries, their
// endpoints, method-count and coverage targets, repository versions.
// makeJob(i) then deterministically expands plan i into a full
// (ApkFile, AppProgram) pair, so a 25,000-app corpus is generated lazily by
// the dispatcher's workers instead of being held in memory.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dex/apk.hpp"
#include "net/server.hpp"
#include "rt/program.hpp"
#include "rt/scenario.hpp"
#include "store/catalog.hpp"
#include "store/repository.hpp"
#include "util/rng.hpp"

namespace libspector::store {

struct StoreConfig {
  std::size_t appCount = 2000;
  std::uint64_t seed = 20200629;  // DSN 2020 opening day
  /// Scales dex method counts (1.0 reproduces the paper's ~49k methods per
  /// apk; the default keeps large studies fast while preserving ratios).
  double methodScale = 0.15;
  /// Events the monkey is expected to deliver per run; trigger-guard
  /// probabilities are calibrated against this so mean request counts hold.
  std::uint32_t expectedMonkeyEvents = 960;
  /// Fraction of repository packages that are ARM-only (filtered by §III-A).
  double armOnlyFraction = 0.06;
  /// Workload-scenario switches (§14). All off (the default) generates the
  /// legacy store byte for byte; every scenario addition draws from an rng
  /// forked off plan.seed, never from the planning stream, so enabling one
  /// flag cannot shift what the others (or the legacy material) generate.
  rt::ScenarioConfig scenarios;
};

/// A planned traffic source within one app.
struct PlannedSource {
  /// Index into libraryProfiles(), or -1 for first-party code.
  int profileIndex = -1;
  /// Dotted package its network-active task methods live in.
  std::string taskPackage;
  /// Destination domains, one task method per domain.
  std::vector<std::string> domains;
  /// Relative request rates per domain (aligned with `domains`): categories
  /// with large responses get proportionally fewer requests so byte totals
  /// follow the profile's destination byte-mix.
  std::vector<double> domainWeights;
  /// Expected requests per run across all this source's domains.
  double meanRequestsPerRun = 0.0;
  double initRequestProb = 0.0;
  std::uint32_t requestBytesMin = 200;
  std::uint32_t requestBytesMax = 1500;
  /// Large initial transfer at startup (game-engine content download).
  bool initialDownload = false;
};

struct AppPlan {
  std::string packageName;
  std::string appCategory;
  CategoryClass cls = CategoryClass::Other;
  std::uint64_t seed = 0;

  enum class Archetype { AntFree, AntOnly, Mixed };
  Archetype archetype = Archetype::Mixed;

  std::vector<PlannedSource> sources;
  /// Libraries present in the dex but never exercised (plus all in sources).
  std::vector<int> bundledProfiles;

  std::size_t totalMethods = 5000;
  double coverageTarget = 0.095;
  int uiHandlers = 40;

  /// Framework-originated ad traffic (the "*-Advertisement" rows of Fig 3).
  bool systemAdTraffic = false;
  std::string systemAdDomain;

  /// Repository versions for this package; `chosenVersion` is what §III-A
  /// selection picked (always valid for planned apps).
  std::vector<ApkVersionInfo> versions;
  std::size_t chosenVersion = 0;

  // --- §14 scenario extensions (defaults = legacy plan) --------------------
  /// backgroundSync: a first-party endpoint polled only from background
  /// ticks, with no UI trigger at all. Empty = none planned.
  std::string syncDomain;
  /// Per-tick fire probability of the sync poller.
  double syncProb = 0.0;
};

class AppStoreGenerator {
 public:
  explicit AppStoreGenerator(StoreConfig config);

  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t appCount() const noexcept { return plans_.size(); }

  /// The shared external-server world (immutable after construction).
  [[nodiscard]] const net::ServerFarm& farm() const noexcept { return farm_; }

  /// Ground-truth generic category of a world domain ("unknown" otherwise);
  /// plug this into vtsim::DomainCategorizer as the truth lookup.
  [[nodiscard]] std::string domainTruth(const std::string& domain) const;

  [[nodiscard]] const AppPlan& plan(std::size_t index) const {
    return plans_.at(index);
  }

  /// Expand plan `index` into the runnable app. Deterministic and
  /// thread-safe (const).
  struct Job {
    dex::ApkFile apk;
    rt::AppProgram program;
  };
  [[nodiscard]] Job makeJob(std::size_t index) const;

  /// The AndroZoo-style repository view used by the §III-A selection tests:
  /// planned apps plus the ARM-only packages the filter rejected.
  [[nodiscard]] const std::vector<RepositoryEntry>& repository() const noexcept {
    return repository_;
  }

 private:
  class DomainWorld;

  void planApp(std::size_t index, util::Rng& rng, DomainWorld& world);

  struct LibraryEndpoint {
    std::string domain;
    std::string category;      // generic domain category
    double requestWeight = 1;  // deflated by the category's mean response
  };

  StoreConfig config_;
  net::ServerFarm farm_;
  std::unordered_map<std::string, std::string> domainTruth_;
  /// Endpoints owned by each library profile (index-aligned).
  std::vector<std::vector<LibraryEndpoint>> libraryEndpoints_;
  std::vector<AppPlan> plans_;
  std::vector<RepositoryEntry> repository_;
};

}  // namespace libspector::store
