// AndroZoo-style repository and the §III-A corpus selection rules.
//
// For every package name the repository may hold several apk versions, each
// with a dex timestamp (possibly the 1980-01-01 default) and the date of its
// latest VirusTotal scan.  Libspector picks the version with the latest dex
// timestamp; for all-default timestamps it falls back to the most recent VT
// scan; ARM-only apks are filtered out entirely (the emulator fleet is x86).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dex/apk.hpp"

namespace libspector::store {

struct ApkVersionInfo {
  std::uint32_t versionCode = 1;
  std::uint64_t dexTimestamp = dex::kDefaultDexTimestamp;  // seconds epoch
  std::uint64_t vtScanDate = 0;                            // 0 = never scanned
  std::vector<std::string> abis;

  [[nodiscard]] bool hasDefaultDexTimestamp() const noexcept {
    return dexTimestamp == dex::kDefaultDexTimestamp;
  }
  [[nodiscard]] bool isX86Compatible() const noexcept;
};

/// §III-A selection: the version with the latest non-default dex timestamp;
/// if every version has the default timestamp, the one most recently
/// scanned by VirusTotal. Returns std::nullopt when `versions` is empty or
/// (per the paper's observation) no version has either signal — a case the
/// paper never encountered and we treat as unselectable.
[[nodiscard]] std::optional<std::size_t> selectApkVersion(
    const std::vector<ApkVersionInfo>& versions);

/// One package in the repository.
struct RepositoryEntry {
  std::string packageName;
  std::vector<ApkVersionInfo> versions;
};

/// Apply selection and the x86 filter across a repository; returns
/// (entryIndex, versionIndex) pairs for the analyzable corpus.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> selectCorpus(
    const std::vector<RepositoryEntry>& repository);

}  // namespace libspector::store
