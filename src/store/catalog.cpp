#include "store/catalog.hpp"

#include <cmath>
#include <unordered_map>

namespace libspector::store {

const std::vector<std::string>& appCategories() {
  // Fig. 2's x-axis (49 categories).
  static const std::vector<std::string> kCategories = {
      "NEWS_AND_MAGAZINES", "MUSIC_AND_AUDIO",   "GAME_SIMULATION",
      "SPORTS",             "BOOKS_AND_REFERENCE", "GAME_PUZZLE",
      "GAME_ACTION",        "EDUCATION",          "ART_AND_DESIGN",
      "GAME_RACING",        "GAME_ARCADE",        "GAME_ADVENTURE",
      "PERSONALIZATION",    "ENTERTAINMENT",      "GAME_WORD",
      "GAME_CASUAL",        "GAME_STRATEGY",      "FOOD_AND_DRINK",
      "TOOLS",              "GAME_BOARD",         "GAME_TRIVIA",
      "GAME_CASINO",        "GAME_SPORTS",        "VIDEO_PLAYERS",
      "COMICS",             "GAME_ROLE_PLAYING",  "MEDICAL",
      "GAME_CARD",          "LIFESTYLE",          "GAME_EDUCATIONAL",
      "SHOPPING",           "HEALTH_AND_FITNESS", "PHOTOGRAPHY",
      "BEAUTY",             "TRAVEL_AND_LOCAL",   "LIBRARIES_AND_DEMO",
      "WEATHER",            "HOUSE_AND_HOME",     "COMMUNICATION",
      "EVENTS",             "GAME_MUSIC",         "SOCIAL",
      "MAPS_AND_NAVIGATION", "PRODUCTIVITY",      "BUSINESS",
      "PARENTING",          "AUTO_AND_VEHICLES",  "FINANCE",
      "DATING"};
  return kCategories;
}

CategoryClass classOf(std::string_view appCategory) {
  if (appCategory.starts_with("GAME_")) return CategoryClass::Game;
  static const std::unordered_map<std::string_view, CategoryClass> kMap = {
      {"NEWS_AND_MAGAZINES", CategoryClass::Media},
      {"MUSIC_AND_AUDIO", CategoryClass::Media},
      {"SPORTS", CategoryClass::Media},
      {"BOOKS_AND_REFERENCE", CategoryClass::Media},
      {"ENTERTAINMENT", CategoryClass::Media},
      {"VIDEO_PLAYERS", CategoryClass::Media},
      {"COMICS", CategoryClass::Media},
      {"SOCIAL", CategoryClass::Social},
      {"COMMUNICATION", CategoryClass::Social},
      {"DATING", CategoryClass::Social},
      {"EVENTS", CategoryClass::Social},
      {"SHOPPING", CategoryClass::Commerce},
      {"FINANCE", CategoryClass::Commerce},
      {"BUSINESS", CategoryClass::Commerce},
      {"PRODUCTIVITY", CategoryClass::Commerce},
      {"TOOLS", CategoryClass::Commerce},
      {"HEALTH_AND_FITNESS", CategoryClass::Lifestyle},
      {"BEAUTY", CategoryClass::Lifestyle},
      {"LIFESTYLE", CategoryClass::Lifestyle},
      {"TRAVEL_AND_LOCAL", CategoryClass::Lifestyle},
      {"FOOD_AND_DRINK", CategoryClass::Lifestyle},
      {"PARENTING", CategoryClass::Lifestyle},
      {"HOUSE_AND_HOME", CategoryClass::Lifestyle},
      {"MEDICAL", CategoryClass::Lifestyle},
      {"AUTO_AND_VEHICLES", CategoryClass::Lifestyle},
  };
  const auto it = kMap.find(appCategory);
  return it == kMap.end() ? CategoryClass::Other : it->second;
}

const std::vector<LibraryProfile>& libraryProfiles() {
  using Mix = std::vector<std::pair<std::string_view, double>>;
  static const Mix kAdMix = {{"advertisements", 0.38}, {"cdn", 0.30},
                             {"business_and_finance", 0.14}, {"info_tech", 0.09},
                             {"entertainment", 0.04}, {"unknown", 0.05}};
  static const Mix kAnalyticsMix = {{"analytics", 0.33}, {"business_and_finance", 0.30},
                                    {"info_tech", 0.14}, {"internet_services", 0.11},
                                    {"unknown", 0.12}};
  static const Mix kDevAidMix = {{"advertisements", 0.18}, {"business_and_finance", 0.14},
                                 {"cdn", 0.14}, {"unknown", 0.14}, {"info_tech", 0.08},
                                 {"entertainment", 0.07}, {"education", 0.04},
                                 {"news", 0.03}, {"lifestyle", 0.04},
                                 {"internet_services", 0.06}, {"communication", 0.03},
                                 {"adult", 0.01}, {"social_networks", 0.01},
                                 {"health", 0.01}, {"games", 0.01}};
  static const Mix kEngineMix = {{"games", 0.46}, {"cdn", 0.24}, {"advertisements", 0.08},
                                 {"info_tech", 0.08}, {"internet_services", 0.08},
                                 {"business_and_finance", 0.06}};
  static const Mix kSocialMix = {{"social_networks", 0.42}, {"cdn", 0.14},
                                 {"business_and_finance", 0.10}, {"info_tech", 0.12},
                                 {"unknown", 0.16}, {"advertisements", 0.06}};
  static const Mix kPaymentMix = {{"business_and_finance", 0.66},
                                  {"internet_services", 0.18}, {"info_tech", 0.16}};
  static const Mix kMapMix = {{"internet_services", 0.28}, {"info_tech", 0.26},
                              {"business_and_finance", 0.20}, {"cdn", 0.26}};
  static const Mix kIdentityMix = {{"internet_services", 0.42},
                                   {"business_and_finance", 0.28}, {"info_tech", 0.30}};
  static const Mix kGuiMix = {{"cdn", 0.40}, {"info_tech", 0.30}, {"unknown", 0.30}};
  static const Mix kUtilityMix = {{"communication", 0.24}, {"info_tech", 0.24},
                                  {"internet_services", 0.20},
                                  {"business_and_finance", 0.16}, {"unknown", 0.16}};
  static const Mix kFrameworkMix = {{"info_tech", 0.5}, {"internet_services", 0.3},
                                    {"unknown", 0.2}};
  static const Mix kMarketMix = {{"business_and_finance", 0.6}, {"internet_services", 0.4}};

  static const std::vector<LibraryProfile> kProfiles = {
      // --- Advertisement networks -----------------------------------------
      {"com.google.android.gms.ads", "Advertisement",
       {"com.google.android.gms.internal.ads", "com.google.android.gms.ads.internal"},
       kAdMix, 5, 0.42, 0.75, 2.68, 120, 350, 6000},
      {"com.facebook.ads", "Advertisement",
       {"com.facebook.ads.internal", "com.facebook.ads.internal.network"},
       kAdMix, 4, 0.24, 0.7, 2.14, 120, 350, 3500},
      {"com.mopub.mobileads", "Advertisement",
       {"com.mopub.mobileads", "com.mopub.network"},
       kAdMix, 3, 0.16, 0.65, 1.88, 120, 350, 2500},
      {"com.chartboost.sdk", "Advertisement",
       {"com.chartboost.sdk.impl"},
       kAdMix, 3, 0.12, 0.7, 2.01, 120, 350, 1800},
      {"com.vungle", "Advertisement",
       {"com.vungle.publisher", "com.vungle.warren.network"},
       kAdMix, 3, 0.10, 0.7, 2.27, 120, 350, 2200},
      {"com.applovin", "Advertisement",
       {"com.applovin.impl.sdk", "com.applovin.adview"},
       kAdMix, 3, 0.10, 0.65, 1.75, 120, 350, 2400},
      {"com.ironsource", "Advertisement",
       {"com.ironsource.sdk.precache", "com.ironsource.mediationsdk"},
       kAdMix, 3, 0.09, 0.65, 1.75, 120, 350, 2000},
      {"com.adcolony.sdk", "Advertisement",
       {"com.adcolony.sdk"},
       kAdMix, 2, 0.07, 0.6, 1.61, 120, 350, 1500},
      {"com.inmobi.ads", "Advertisement",
       {"com.inmobi.ads", "com.inmobi.rendering"},
       kAdMix, 2, 0.05, 0.6, 1.47, 120, 350, 1600},
      {"com.unity3d.ads", "Advertisement",
       {"com.unity3d.ads.android.cache", "com.unity3d.ads.cache"},
       kAdMix, 3, 0.08, 0.75, 2.41, 120, 350, 1400},
      {"com.tapjoy", "Advertisement",
       {"com.tapjoy.internal"},
       kAdMix, 2, 0.05, 0.6, 1.34, 120, 350, 1300},
      {"com.startapp.android.publish", "Advertisement",
       {"com.startapp.android.publish.network"},
       kAdMix, 2, 0.04, 0.6, 1.34, 120, 350, 1200},
      // --- Mobile analytics -------------------------------------------------
      {"com.google.firebase.analytics", "Mobile Analytics",
       {"com.google.firebase.analytics.connector"},
       kAnalyticsMix, 2, 0.40, 0.9, 2.92, 400, 3200, 1800},
      {"com.google.android.gms.analytics", "Mobile Analytics",
       {"com.google.android.gms.analytics.internal"},
       kAnalyticsMix, 2, 0.28, 0.85, 2.27, 400, 2800, 1600},
      {"com.crashlytics.android", "Mobile Analytics",
       {"com.crashlytics.android.core"},
       kAnalyticsMix, 2, 0.30, 0.8, 1.16, 2000, 24000, 1200},
      {"com.flurry", "Mobile Analytics",
       {"com.flurry.sdk"},
       kAnalyticsMix, 2, 0.16, 0.8, 1.68, 300, 900, 1400},
      {"com.appsflyer", "Mobile Analytics",
       {"com.appsflyer.internal"},
       kAnalyticsMix, 2, 0.12, 0.8, 1.42, 300, 900, 900},
      {"com.mixpanel.android", "Mobile Analytics",
       {"com.mixpanel.android.mpmetrics"},
       kAnalyticsMix, 2, 0.08, 0.75, 1.30, 300, 900, 900},
      {"com.adjust.sdk", "Mobile Analytics",
       {"com.adjust.sdk.network"},
       kAnalyticsMix, 2, 0.08, 0.75, 1.16, 300, 900, 700},
      // --- Development aid (transports & loaders) --------------------------
      {"okhttp3", "Development Aid",
       {"okhttp3.internal.http", "okhttp3.internal.connection"},
       kDevAidMix, 4, 0.52, 0.4, 5.75, 500, 2000, 2400},
      {"com.android.volley", "Development Aid",
       {"com.android.volley", "com.android.volley.toolbox"},
       kDevAidMix, 3, 0.32, 0.35, 4.22, 500, 2000, 1200},
      {"com.squareup.picasso", "Development Aid",
       {"com.squareup.picasso"},
       kDevAidMix, 3, 0.30, 0.25, 3.83, 500, 1800, 900},
      {"com.bumptech.glide", "Development Aid",
       {"com.bumptech.glide.load.engine.executor"},
       kDevAidMix, 3, 0.42, 0.25, 4.22, 500, 1800, 2600},
      {"com.nostra13.universalimageloader", "Development Aid",
       {"com.nostra13.universalimageloader.core"},
       kDevAidMix, 3, 0.18, 0.25, 3.44, 500, 1800, 1100},
      {"com.loopj.android.http", "Development Aid",
       {"com.loopj.android.http"},
       kDevAidMix, 2, 0.12, 0.3, 2.68, 500, 1800, 700},
      {"com.amazon.whispersync", "Development Aid",
       {"com.amazon.whispersync.dcp"},
       kDevAidMix, 2, 0.08, 0.5, 2.68, 500, 2000, 1500},
      {"bestdict.common", "Development Aid",
       {"bestdict.common.net"},
       kDevAidMix, 2, 0.03, 0.5, 3.07, 500, 1800, 500},
      // --- Game engines ------------------------------------------------------
      {"com.unity3d.player", "Game Engine",
       {"com.unity3d.player"},
       kEngineMix, 4, 0.30, 0.8, 0.06, 250, 600, 3200},
      {"com.gameloft", "Game Engine",
       {"com.gameloft.android.packager"},
       kEngineMix, 3, 0.06, 0.8, 0.06, 250, 600, 2400},
      {"org.cocos2dx.lib", "Game Engine",
       {"org.cocos2dx.lib"},
       kEngineMix, 2, 0.10, 0.7, 0.04, 250, 600, 1800},
      {"com.badlogic.gdx", "Game Engine",
       {"com.badlogic.gdx.net"},
       kEngineMix, 2, 0.08, 0.6, 0.03, 250, 600, 1600},
      // --- Social networks --------------------------------------------------
      {"com.facebook.internal", "Social Network",
       {"com.facebook.internal", "com.facebook.share.internal"},
       kSocialMix, 3, 0.26, 0.5, 0.66, 500, 26000, 2800},
      {"com.twitter.sdk.android", "Social Network",
       {"com.twitter.sdk.android.core"},
       kSocialMix, 2, 0.08, 0.4, 0.44, 400, 1500, 1200},
      {"com.vk.sdk", "Social Network",
       {"com.vk.sdk.api"},
       kSocialMix, 2, 0.04, 0.4, 0.38, 400, 1500, 800},
      // --- Payment -----------------------------------------------------------
      {"com.paypal.android.sdk", "Payment",
       {"com.paypal.android.sdk.payments"},
       kPaymentMix, 2, 0.08, 0.35, 1.82, 400, 1600, 1100},
      {"com.stripe.android", "Payment",
       {"com.stripe.android.net"},
       kPaymentMix, 2, 0.07, 0.35, 1.66, 400, 1500, 700},
      {"com.braintreepayments.api", "Payment",
       {"com.braintreepayments.api.internal"},
       kPaymentMix, 2, 0.06, 0.35, 1.49, 400, 1500, 800},
      // --- Map / LBS ----------------------------------------------------------
      {"com.google.android.gms.maps", "Map/LBS",
       {"com.google.android.gms.maps.internal"},
       kMapMix, 2, 0.14, 0.5, 0.60, 400, 1300, 2200},
      {"com.mapbox.mapboxsdk", "Map/LBS",
       {"com.mapbox.mapboxsdk.http"},
       kMapMix, 2, 0.05, 0.5, 0.50, 400, 1300, 1400},
      // --- Digital identity ---------------------------------------------------
      {"com.google.android.gms.auth", "Digital Identity",
       {"com.google.android.gms.auth.api"},
       kIdentityMix, 2, 0.20, 0.55, 0.43, 400, 1400, 1300},
      {"com.facebook.login", "Digital Identity",
       {"com.facebook.login"},
       kIdentityMix, 2, 0.12, 0.5, 0.36, 400, 1400, 700},
      // --- GUI components ------------------------------------------------------
      {"com.airbnb.lottie", "GUI Component",
       {"com.airbnb.lottie.network"},
       kGuiMix, 2, 0.24, 0.35, 0.72, 200, 500, 1400},
      {"com.github.mikephil.charting", "GUI Component",
       {"com.github.mikephil.charting.data"},
       kGuiMix, 1, 0.16, 0.25, 0.50, 200, 500, 1100},
      // --- Utility --------------------------------------------------------------
      {"com.onesignal", "Utility",
       {"com.onesignal"},
       kUtilityMix, 2, 0.30, 0.7, 3.01, 350, 1200, 900},
      {"com.urbanairship", "Utility",
       {"com.urbanairship.push"},
       kUtilityMix, 2, 0.12, 0.6, 2.67, 350, 1200, 1100},
      {"com.google.firebase.messaging", "Utility",
       {"com.google.firebase.messaging"},
       kUtilityMix, 2, 0.38, 0.6, 2.67, 350, 1200, 1000},
      // --- Development frameworks -------------------------------------------
      {"org.apache.cordova", "Development Framework",
       {"org.apache.cordova"},
       kFrameworkMix, 1, 0.06, 0.2, 0.32, 300, 1200, 1600},
      {"com.facebook.react", "Development Framework",
       {"com.facebook.react.modules.network"},
       kFrameworkMix, 1, 0.06, 0.2, 0.32, 300, 1200, 2400},
      // --- App market -----------------------------------------------------------
      {"com.android.vending.billing", "App Market",
       {"com.android.vending.billing"},
       kMarketMix, 1, 0.18, 0.1, 0.04, 300, 1000, 300},
      {"com.unity3d.plugin.downloader", "App Market",
       {"com.unity3d.plugin.downloader"},
       kMarketMix, 1, 0.04, 0.2, 0.06, 300, 1200, 400},
  };
  return kProfiles;
}

double inclusionProbability(CategoryClass cls, const LibraryProfile& profile) {
  // Per-class multiplier over the profile's base inclusion probability.
  double multiplier = 1.0;
  const std::string_view category = profile.radarCategory;
  switch (cls) {
    case CategoryClass::Game:
      if (category == "Advertisement") multiplier = 2.1;
      else if (category == "Game Engine") multiplier = 3.4;
      else if (category == "App Market") multiplier = 2.0;
      else if (category == "Development Aid") multiplier = 0.6;
      else if (category == "Payment") multiplier = 0.4;
      else if (category == "Map/LBS") multiplier = 0.1;
      break;
    case CategoryClass::Media:
      if (category == "Development Aid") multiplier = 1.8;
      else if (category == "Advertisement") multiplier = 1.5;
      else if (category == "Game Engine") multiplier = 0.05;
      else if (category == "GUI Component") multiplier = 1.4;
      break;
    case CategoryClass::Social:
      if (category == "Social Network") multiplier = 3.0;
      else if (category == "Digital Identity") multiplier = 2.0;
      else if (category == "Development Aid") multiplier = 1.5;
      else if (category == "Game Engine") multiplier = 0.05;
      break;
    case CategoryClass::Commerce:
      if (category == "Payment") multiplier = 4.0;
      else if (category == "Advertisement") multiplier = 0.6;
      else if (category == "Game Engine") multiplier = 0.02;
      else if (category == "Digital Identity") multiplier = 1.6;
      break;
    case CategoryClass::Lifestyle:
      if (category == "Map/LBS") multiplier = 2.4;
      else if (category == "Game Engine") multiplier = 0.03;
      else if (category == "Advertisement") multiplier = 1.1;
      break;
    case CategoryClass::Other:
      if (category == "Game Engine") multiplier = 0.05;
      break;
  }
  const double p = profile.inclusionBase * multiplier;
  return p > 0.95 ? 0.95 : p;
}

double ResponseProfile::meanBytes() const {
  return std::exp(logMu + logSigma * logSigma / 2.0);
}

ResponseProfile responseProfileFor(std::string_view genericCategory) {
  static const std::unordered_map<std::string_view, ResponseProfile> kProfiles = {
      {"advertisements", {10.2, 1.0, 512, 600 * 1024}},
      {"analytics", {7.0, 0.9, 128, 16 * 1024}},
      {"cdn", {11.6, 1.3, 4 * 1024, 8 * 1024 * 1024}},
      {"games", {11.6, 1.4, 2 * 1024, 12 * 1024 * 1024}},
      {"entertainment", {11.6, 1.35, 2 * 1024, 10 * 1024 * 1024}},
      {"news", {11.0, 1.15, 1024, 4 * 1024 * 1024}},
      {"business_and_finance", {9.8, 1.1, 256, 2 * 1024 * 1024}},
      {"info_tech", {9.7, 1.1, 256, 2 * 1024 * 1024}},
      {"internet_services", {9.4, 1.0, 256, 1024 * 1024}},
      {"social_networks", {10.6, 1.1, 512, 3 * 1024 * 1024}},
      {"communication", {9.2, 1.0, 256, 1024 * 1024}},
      {"education", {10.1, 1.0, 512, 2 * 1024 * 1024}},
      {"lifestyle", {9.9, 1.0, 512, 2 * 1024 * 1024}},
      {"health", {9.4, 1.0, 256, 1024 * 1024}},
      {"adult", {10.6, 1.1, 512, 3 * 1024 * 1024}},
      {"malicious", {8.0, 1.0, 128, 256 * 1024}},
      {"unknown", {9.5, 1.1, 128, 2 * 1024 * 1024}},
  };
  const auto it = kProfiles.find(genericCategory);
  return it == kProfiles.end() ? ResponseProfile{} : it->second;
}

std::vector<double> requestWeightsFromByteMix(
    const std::vector<std::pair<std::string_view, double>>& mix) {
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& [category, byteShare] : mix)
    weights.push_back(byteShare / responseProfileFor(category).meanBytes());
  return weights;
}

double appCountWeight(std::string_view appCategory) {
  static const std::unordered_map<std::string_view, double> kWeights = {
      {"MUSIC_AND_AUDIO", 2.2}, {"NEWS_AND_MAGAZINES", 2.2},
      {"SPORTS", 1.8},          {"BOOKS_AND_REFERENCE", 1.8},
      {"EDUCATION", 1.7},       {"ENTERTAINMENT", 1.6},
      {"PERSONALIZATION", 1.5}, {"TOOLS", 1.5},
      {"ART_AND_DESIGN", 1.3},  {"VIDEO_PLAYERS", 1.1},
      {"FOOD_AND_DRINK", 1.1},  {"COMICS", 0.9},
      {"LIFESTYLE", 0.9},       {"SHOPPING", 0.9},
      {"HEALTH_AND_FITNESS", 0.9}, {"PHOTOGRAPHY", 0.8},
      {"BEAUTY", 0.8},          {"TRAVEL_AND_LOCAL", 0.8},
      {"MEDICAL", 0.9},         {"LIBRARIES_AND_DEMO", 0.7},
      {"WEATHER", 0.7},         {"HOUSE_AND_HOME", 0.7},
      {"COMMUNICATION", 0.7},   {"EVENTS", 0.6},
      {"SOCIAL", 0.6},          {"MAPS_AND_NAVIGATION", 0.5},
      {"PRODUCTIVITY", 0.5},    {"BUSINESS", 0.5},
      {"PARENTING", 0.4},       {"AUTO_AND_VEHICLES", 0.4},
      {"FINANCE", 0.4},         {"DATING", 0.3},
  };
  if (appCategory.starts_with("GAME_")) {
    // 19 game categories, decaying from simulation/puzzle/action to music.
    static const std::unordered_map<std::string_view, double> kGames = {
        {"GAME_SIMULATION", 2.0}, {"GAME_PUZZLE", 1.9}, {"GAME_ACTION", 1.9},
        {"GAME_RACING", 1.5},     {"GAME_ARCADE", 1.5}, {"GAME_ADVENTURE", 1.4},
        {"GAME_WORD", 1.2},       {"GAME_CASUAL", 1.2}, {"GAME_STRATEGY", 1.2},
        {"GAME_BOARD", 1.0},      {"GAME_TRIVIA", 1.0}, {"GAME_CASINO", 1.0},
        {"GAME_SPORTS", 1.0},     {"GAME_ROLE_PLAYING", 0.9},
        {"GAME_CARD", 0.8},       {"GAME_EDUCATIONAL", 0.7},
        {"GAME_MUSIC", 0.6}};
    const auto it = kGames.find(appCategory);
    return it == kGames.end() ? 1.0 : it->second;
  }
  const auto it = kWeights.find(appCategory);
  return it == kWeights.end() ? 1.0 : it->second;
}

double contentIntensity(std::string_view appCategory) {
  static const std::unordered_map<std::string_view, double> kIntensity = {
      {"MUSIC_AND_AUDIO", 3.2},    {"NEWS_AND_MAGAZINES", 3.0},
      {"SPORTS", 2.2},             {"BOOKS_AND_REFERENCE", 1.9},
      {"LIBRARIES_AND_DEMO", 1.8}, {"EDUCATION", 1.7},
      {"EVENTS", 1.6},             {"PERSONALIZATION", 1.5},
      {"ENTERTAINMENT", 1.5},      {"COMICS", 1.4},
      {"ART_AND_DESIGN", 1.3},     {"TOOLS", 1.2},
      {"VIDEO_PLAYERS", 1.2},      {"FOOD_AND_DRINK", 1.1},
      {"MEDICAL", 1.0},            {"SOCIAL", 0.9},
      {"BEAUTY", 0.9},             {"LIFESTYLE", 0.9},
      {"SHOPPING", 0.8},           {"HOUSE_AND_HOME", 0.8},
      {"PHOTOGRAPHY", 0.8},        {"HEALTH_AND_FITNESS", 0.8},
      {"TRAVEL_AND_LOCAL", 0.7},   {"WEATHER", 0.7},
      {"COMMUNICATION", 0.6},      {"PARENTING", 0.5},
      {"AUTO_AND_VEHICLES", 0.5},  {"MAPS_AND_NAVIGATION", 0.5},
      {"BUSINESS", 0.4},           {"PRODUCTIVITY", 0.4},
      {"FINANCE", 0.35},           {"DATING", 0.3},
  };
  if (appCategory.starts_with("GAME_")) return 1.0;  // engines drive games
  const auto it = kIntensity.find(appCategory);
  return it == kIntensity.end() ? 1.0 : it->second;
}

UserAgentProfile userAgentProfileFor(std::string_view libraryPrefix) {
  // Identifying UA strings modeled on the real SDKs; identifyProb reflects
  // how often each SDK labels its traffic instead of riding the platform
  // HTTP stack's default UA. Prior work's UA-based attribution only sees
  // the identifying fraction (the paper's critique in its introduction).
  struct Row {
    std::string_view prefix;
    UserAgentProfile profile;
  };
  static constexpr Row kRows[] = {
      {"com.google.android.gms.ads", {"GoogleAds-SDK/19 (Android)", 0.55}},
      {"com.facebook.ads", {"FBAudienceNetwork/5.6 AN-SDK", 0.60}},
      {"com.mopub.mobileads", {"MoPubSDK/5.4 (Android)", 0.50}},
      {"com.chartboost.sdk", {"Chartboost-Android-SDK 7.5", 0.65}},
      {"com.vungle", {"VungleAmazon/6.3 VungleDroid", 0.62}},
      {"com.applovin", {"AppLovinSdk/9.0 (Android)", 0.45}},
      {"com.ironsource", {"ironSourceSDK/6.10 Android", 0.40}},
      {"com.adcolony.sdk", {"AdColony/4.1 (Android)", 0.55}},
      {"com.inmobi.ads", {"InMobi/9.0 (Android)", 0.50}},
      {"com.unity3d.ads", {"UnityAds/3.4 Android", 0.60}},
      {"com.tapjoy", {"Tapjoy/12.4 (Android)", 0.45}},
      {"com.startapp.android.publish", {"StartAppSDK/4.6", 0.40}},
      {"com.google.firebase.analytics", {"Firebase-Analytics/17", 0.30}},
      {"com.google.android.gms.analytics", {"GoogleAnalytics/3.0 (Android)", 0.40}},
      {"com.crashlytics.android", {"Crashlytics Android SDK/2.10", 0.50}},
      {"com.flurry", {"FlurryAgent/11.4 Android", 0.45}},
      {"com.appsflyer", {"AppsFlyer/4.10 (Android)", 0.40}},
      {"com.mixpanel.android", {"Mixpanel/5.6 (Android)", 0.35}},
      {"com.adjust.sdk", {"Adjust/4.18 (Android)", 0.40}},
      {"okhttp3", {"okhttp/3.12.0", 0.80}},
      {"com.android.volley", {"Volley/1.1 (Linux; Android 7.1.1)", 0.35}},
      {"com.squareup.picasso", {"Picasso/2.71", 0.25}},
      {"com.bumptech.glide", {"", 0.0}},  // Glide rides the transport UA
      {"com.nostra13.universalimageloader", {"UniversalImageLoader/1.9", 0.20}},
      {"com.loopj.android.http", {"android-async-http/1.4", 0.55}},
      {"com.unity3d.player", {"UnityPlayer/2019.2 (UnityWebRequest)", 0.70}},
      {"com.gameloft", {"Gameloft/GLiveHTML (Android)", 0.40}},
      {"com.facebook.internal", {"FBAndroidSDK.5.5", 0.50}},
      {"com.twitter.sdk.android", {"TwitterAndroidSDK/3.3", 0.45}},
      {"com.paypal.android.sdk", {"PayPalSDK/2.15 (Android)", 0.55}},
      {"com.stripe.android", {"Stripe/v1 AndroidBindings/14", 0.60}},
      {"com.onesignal", {"OneSignal/3.12 (Android)", 0.35}},
      {"com.urbanairship", {"UrbanAirshipLib-android/9.7", 0.35}},
  };
  for (const auto& row : kRows) {
    if (libraryPrefix == row.prefix ||
        (libraryPrefix.size() > row.prefix.size() &&
         libraryPrefix.starts_with(row.prefix) &&
         libraryPrefix[row.prefix.size()] == '.'))
      return row.profile;
  }
  return {"", 0.0};
}

std::string_view requestPathFor(std::string_view radarCategory) {
  if (radarCategory == "Advertisement") return "/ads/v2/fetch";
  if (radarCategory == "Mobile Analytics") return "/v1/events/batch";
  if (radarCategory == "Development Aid") return "/content/assets";
  if (radarCategory == "Game Engine") return "/bundles/download";
  if (radarCategory == "Social Network") return "/graph/v4/me";
  if (radarCategory == "Payment") return "/v1/checkout";
  if (radarCategory == "Map/LBS") return "/tiles/v5";
  if (radarCategory == "Digital Identity") return "/oauth2/token";
  if (radarCategory == "GUI Component") return "/assets/animations";
  if (radarCategory == "Utility") return "/push/register";
  if (radarCategory == "Development Framework") return "/bridge/rpc";
  if (radarCategory == "App Market") return "/billing/v3/skus";
  return "/api/v1/data";
}

const std::vector<std::pair<std::string_view, double>>& firstPartyDestinationMix(
    CategoryClass cls) {
  using Mix = std::vector<std::pair<std::string_view, double>>;
  static const Mix kGame = {{"games", 0.30}, {"business_and_finance", 0.18},
                            {"cdn", 0.14}, {"info_tech", 0.16}, {"unknown", 0.22}};
  static const Mix kMedia = {{"entertainment", 0.26}, {"news", 0.20}, {"cdn", 0.16},
                             {"business_and_finance", 0.10}, {"info_tech", 0.10},
                             {"communication", 0.06}, {"unknown", 0.12}};
  static const Mix kSocial = {{"social_networks", 0.22}, {"communication", 0.28},
                              {"business_and_finance", 0.14}, {"info_tech", 0.14},
                              {"adult", 0.04}, {"unknown", 0.18}};
  static const Mix kCommerce = {{"business_and_finance", 0.46}, {"info_tech", 0.18},
                                {"internet_services", 0.16}, {"unknown", 0.20}};
  static const Mix kLifestyle = {{"lifestyle", 0.30}, {"health", 0.10},
                                 {"business_and_finance", 0.18}, {"info_tech", 0.14},
                                 {"unknown", 0.28}};
  static const Mix kOther = {{"info_tech", 0.26}, {"business_and_finance", 0.22},
                             {"internet_services", 0.14}, {"education", 0.10},
                             {"unknown", 0.28}};
  switch (cls) {
    case CategoryClass::Game: return kGame;
    case CategoryClass::Media: return kMedia;
    case CategoryClass::Social: return kSocial;
    case CategoryClass::Commerce: return kCommerce;
    case CategoryClass::Lifestyle: return kLifestyle;
    case CategoryClass::Other: return kOther;
  }
  return kOther;
}

}  // namespace libspector::store
