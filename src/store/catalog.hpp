// The static catalogue behind the synthetic app store: the 49 Play-store
// categories (Fig. 2's x-axis), behavioural profiles of the well-known
// libraries that generate traffic, and per-generic-category endpoint
// response models.
//
// These profiles are the generator's ground truth; nothing in the analysis
// pipeline reads them — Libspector must *recover* the population structure
// from runtime observation alone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace libspector::store {

/// The 49 Google Play app categories of Fig. 2.
[[nodiscard]] const std::vector<std::string>& appCategories();

/// Coarse behavioural classes the 49 categories map onto.
enum class CategoryClass {
  Game,       // GAME_*
  Media,      // music, news, video, entertainment, sports, comics, books
  Social,     // social, communication, dating, events
  Commerce,   // shopping, finance, business, productivity, tools
  Lifestyle,  // health, beauty, lifestyle, travel, food, parenting, ...
  Other,
};
[[nodiscard]] CategoryClass classOf(std::string_view appCategory);

/// How one well-known library behaves at runtime.
struct LibraryProfile {
  std::string_view prefix;       // e.g. "com.unity3d.ads"
  std::string_view radarCategory;  // its LibRadar category (generation truth)
  /// Sub-packages its network-active methods live in (what origin-library
  /// attribution should recover), e.g. "com.unity3d.ads.android.cache".
  /// Several sub-packages means several distinct origin-libraries.
  std::vector<std::string_view> activeSubpackages;
  /// Destination mix: (generic domain category, weight) — the driver behind
  /// the Fig. 9 heatmap structure.
  std::vector<std::pair<std::string_view, double>> destinationMix;
  /// Endpoints this library owns in the world.
  int domainCount = 3;
  /// Base probability an app bundles this library (modulated per class).
  double inclusionBase = 0.2;
  /// Probability the library fires a request during app startup.
  double initRequestProb = 0.5;
  /// Mean requests per exercised app run (used to derive trigger guards).
  double meanRequestsPerRun = 6.0;
  std::uint32_t requestBytesMin = 200;
  std::uint32_t requestBytesMax = 1500;
  /// Bulk dex methods the library contributes (before method scaling).
  std::uint32_t bulkMethods = 2000;
};

/// All scripted library profiles.
[[nodiscard]] const std::vector<LibraryProfile>& libraryProfiles();

/// Probability that an app of `cls` bundles library `profile`.
[[nodiscard]] double inclusionProbability(CategoryClass cls,
                                          const LibraryProfile& profile);

/// How network-hungry first-party/content code of a category is (drives the
/// Fig. 8 per-app averages: music and news on top, dating at the bottom).
[[nodiscard]] double contentIntensity(std::string_view appCategory);

/// HTTP User-Agent behaviour of a library (the identifiers prior work
/// classified ad traffic by, §I / §V).
struct UserAgentProfile {
  /// The SDK's identifying UA string ("" when the SDK never sets one).
  std::string_view sdkUserAgent;
  /// Probability a request carries the identifying UA; otherwise the
  /// request goes out with the generic platform Dalvik UA.
  double identifyProb = 0.0;
};
[[nodiscard]] UserAgentProfile userAgentProfileFor(std::string_view libraryPrefix);

/// A plausible request path for traffic of one library category.
[[nodiscard]] std::string_view requestPathFor(std::string_view radarCategory);

/// Response-size model for a generic domain category.
struct ResponseProfile {
  double logMu = 8.5;
  double logSigma = 1.0;
  std::uint32_t minBytes = 128;
  std::uint32_t maxBytes = 4 * 1024 * 1024;

  /// Mean response size implied by the lognormal (clamp ignored).
  [[nodiscard]] double meanBytes() const;
};
[[nodiscard]] ResponseProfile responseProfileFor(std::string_view genericCategory);

/// Destination mixes are *byte shares* (what Fig. 9 reports); converting
/// them to per-request draw weights requires deflating each category by its
/// mean response size. Returns weights aligned with `mix`.
[[nodiscard]] std::vector<double> requestWeightsFromByteMix(
    const std::vector<std::pair<std::string_view, double>>& mix);

/// Relative number of store apps per category (games and media dominate).
[[nodiscard]] double appCountWeight(std::string_view appCategory);

/// Destination mix of first-party (developer-authored) code per category
/// class — the "Unknown" column of Fig. 9.
[[nodiscard]] const std::vector<std::pair<std::string_view, double>>&
firstPartyDestinationMix(CategoryClass cls);

}  // namespace libspector::store
