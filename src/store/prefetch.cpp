#include "store/prefetch.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/sha256.hpp"

namespace libspector::store {

namespace {

std::vector<std::size_t> allIndices(const AppStoreGenerator& generator) {
  std::vector<std::size_t> indices(generator.appCount());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return indices;
}

}  // namespace

JobPrefetcher::JobPrefetcher(const AppStoreGenerator& generator,
                             std::vector<std::size_t> indices,
                             PrefetchConfig config)
    : generator_(generator),
      indices_(std::move(indices)),
      config_{config.threads, std::max<std::size_t>(config.capacity, 1),
              config.hashApks} {
  const std::size_t threads =
      std::min(config_.threads, std::max<std::size_t>(indices_.size(), 1));
  generators_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    generators_.emplace_back([this] { generatorLoop(); });
}

JobPrefetcher::JobPrefetcher(const AppStoreGenerator& generator,
                             PrefetchConfig config)
    : JobPrefetcher(generator, allIndices(generator), config) {}

JobPrefetcher::~JobPrefetcher() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  windowOpen_.notify_all();
  headReady_.notify_all();
  for (auto& thread : generators_) thread.join();
}

JobPrefetcher::Item JobPrefetcher::expand(std::size_t position) const {
  Item item;
  item.index = indices_[position];
  item.job = generator_.makeJob(item.index);
  if (config_.hashApks) item.apkSha256 = util::toHex(item.job.apk.sha256());
  return item;
}

void JobPrefetcher::generatorLoop() {
  while (true) {
    std::size_t position = 0;
    {
      std::unique_lock lock(mutex_);
      // The reorder window: never claim more than `capacity` positions
      // ahead of the consumer's head, so outstanding jobs — and with them
      // memory — stay O(capacity) even when the consumer is slow.
      windowOpen_.wait(lock, [this] {
        return stop_ || nextClaim_ == indices_.size() ||
               nextClaim_ < head_ + config_.capacity;
      });
      if (stop_ || nextClaim_ == indices_.size()) return;
      position = nextClaim_++;
      stats_.maxOutstanding = std::max(stats_.maxOutstanding, nextClaim_ - head_);
    }

    Item item = expand(position);  // the heavy work, outside the lock

    {
      const std::scoped_lock lock(mutex_);
      if (stop_) return;
      ++stats_.produced;
      const bool isHead = position == head_;
      ready_.emplace(position, std::move(item));
      if (isHead) headReady_.notify_all();
    }
  }
}

std::optional<JobPrefetcher::Item> JobPrefetcher::next() {
  if (generators_.empty()) {
    // Pull-through (serial) mode: same expansion code, caller's thread.
    std::size_t position = 0;
    {
      const std::scoped_lock lock(mutex_);
      if (head_ == indices_.size()) return std::nullopt;
      position = head_++;
      stats_.maxOutstanding = std::max<std::size_t>(stats_.maxOutstanding, 1);
    }
    Item item = expand(position);
    const std::scoped_lock lock(mutex_);
    ++stats_.produced;
    ++stats_.delivered;
    return item;
  }

  std::unique_lock lock(mutex_);
  if (head_ == indices_.size()) return std::nullopt;
  if (!stop_ && ready_.find(head_) == ready_.end()) ++stats_.consumerWaits;
  headReady_.wait(lock, [this] {
    return stop_ || ready_.find(head_) != ready_.end();
  });
  if (stop_) return std::nullopt;
  auto node = ready_.extract(head_);
  ++head_;
  ++stats_.delivered;
  // The window moved: every generator parked on it may now claim.
  windowOpen_.notify_all();
  return std::move(node.mapped());
}

JobPrefetcher::Stats JobPrefetcher::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace libspector::store
