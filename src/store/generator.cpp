#include "store/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/strings.hpp"

namespace libspector::store {

namespace {

constexpr double kAntFreeFraction = 0.10;
constexpr double kAntOnlyFraction = 0.34;

std::string slashed(std::string_view dotted) {
  std::string out(dotted);
  std::replace(out.begin(), out.end(), '.', '/');
  return out;
}

/// Smali signature builder.
std::string makeSignature(std::string_view dottedClass, std::string_view method,
                          std::string_view params = "", std::string_view ret = "V") {
  std::string out = "L";
  out += slashed(dottedClass);
  out += ";->";
  out += method;
  out += "(";
  out += params;
  out += ")";
  out += ret;
  return out;
}

std::string sanitizeSlug(std::string_view prefix) {
  // "com.unity3d.ads" -> "unity3d-ads"
  std::string_view body = prefix;
  if (body.starts_with("com.")) body.remove_prefix(4);
  else if (body.starts_with("org.")) body.remove_prefix(4);
  else if (body.starts_with("net.")) body.remove_prefix(4);
  else if (body.starts_with("io.")) body.remove_prefix(3);
  std::string out(body);
  std::replace(out.begin(), out.end(), '.', '-');
  return out;
}

std::string_view drawCategory(
    const std::vector<std::pair<std::string_view, double>>& mix,
    util::Rng& rng) {
  // Mixes are byte shares (Fig. 9); requests are drawn deflated by each
  // category's mean response size so byte totals land on the mix.
  const auto weights = requestWeightsFromByteMix(mix);
  return mix[rng.weightedIndex(weights)].first;
}

bool isAntCategory(std::string_view radarCategory) {
  return radarCategory == "Advertisement" || radarCategory == "Mobile Analytics";
}

}  // namespace

// ---------------------------------------------------------------------------
// DomainWorld: endpoint creation with per-category sharing pools.
// ---------------------------------------------------------------------------

class AppStoreGenerator::DomainWorld {
 public:
  DomainWorld(net::ServerFarm& farm,
              std::unordered_map<std::string, std::string>& truth)
      : farm_(farm), truth_(truth) {}

  std::string acquire(std::string_view category, std::string_view ownerSlug,
                      util::Rng& rng) {
    auto& pool = pools_[std::string(category)];
    if (!pool.empty() && rng.chance(reuseProbability(category)))
      return rng.pick(pool);

    const int id = ++counters_[std::string(category)];
    static constexpr std::string_view kTlds[] = {"com", "net", "io", "org", "co"};
    std::string domain = std::string(stemOf(category)) + std::to_string(id);
    domain += ".";
    // Heavily shared infrastructure (CDNs) is third-party and generic --
    // "cdn3.edgecache.net", not a brand host. This is exactly what defeats
    // hostname-based attribution (paper intro).
    if (category == "cdn") {
      domain += "edgecache.";
    } else if (!ownerSlug.empty()) {
      domain += ownerSlug;
      domain += ".";
    }
    domain += kTlds[static_cast<std::size_t>(id) % std::size(kTlds)];

    const ResponseProfile response = responseProfileFor(category);
    net::EndpointProfile profile;
    profile.domain = domain;
    profile.trueCategory = std::string(category);
    profile.responseLogMu = response.logMu;
    profile.responseLogSigma = response.logSigma;
    profile.minResponseBytes = response.minBytes;
    profile.maxResponseBytes = response.maxBytes;

    std::optional<net::Ipv4Addr> sharedIp;
    if (category == "cdn" && !cdnHosts_.empty() && rng.chance(0.55))
      sharedIp = rng.pick(cdnHosts_);
    const net::Ipv4Addr ip = farm_.addEndpoint(std::move(profile), sharedIp);
    if (category == "cdn" && !sharedIp) cdnHosts_.push_back(ip);
    // CDN frontends are multi-homed: DNS rotates across several A records
    // as TTLs expire, so one domain maps to different addresses over a run.
    if (category == "cdn") {
      const std::uint64_t extra = rng.uniform(1, 3);
      for (std::uint64_t a = 0; a < extra; ++a)
        farm_.addAlternateAddress(domain);
    }

    truth_[domain] = std::string(category);
    pool.push_back(domain);
    return domain;
  }

 private:
  static double reuseProbability(std::string_view category) {
    if (category == "cdn") return 0.97;
    if (category == "social_networks") return 0.75;
    if (category == "analytics") return 0.55;
    if (category == "advertisements") return 0.28;
    if (category == "business_and_finance") return 0.55;
    if (category == "info_tech") return 0.55;
    if (category == "internet_services") return 0.55;
    if (category == "unknown") return 0.50;
    if (category == "games") return 0.20;
    return 0.35;
  }

  static std::string_view stemOf(std::string_view category) {
    if (category == "advertisements") return "adserv";
    if (category == "analytics") return "metrics";
    if (category == "cdn") return "cdn";
    if (category == "business_and_finance") return "api";
    if (category == "info_tech") return "svc";
    if (category == "internet_services") return "cloud";
    if (category == "social_networks") return "social";
    if (category == "communication") return "msg";
    if (category == "education") return "learn";
    if (category == "entertainment") return "media";
    if (category == "news") return "news";
    if (category == "games") return "game";
    if (category == "lifestyle") return "life";
    if (category == "health") return "health";
    if (category == "adult") return "adult";
    if (category == "malicious") return "mal";
    return "host";
  }

  net::ServerFarm& farm_;
  std::unordered_map<std::string, std::string>& truth_;
  std::unordered_map<std::string, std::vector<std::string>> pools_;
  std::unordered_map<std::string, int> counters_;
  std::vector<net::Ipv4Addr> cdnHosts_;
};

// ---------------------------------------------------------------------------
// World construction.
// ---------------------------------------------------------------------------

AppStoreGenerator::AppStoreGenerator(StoreConfig config) : config_(config) {
  if (config_.appCount == 0)
    throw std::invalid_argument("AppStoreGenerator: appCount == 0");
  util::Rng rng(config_.seed);
  DomainWorld world(farm_, domainTruth_);

  // Library-owned endpoints. The endpoint *set* follows the byte-share mix
  // (largest-remainder, so every significant category is represented);
  // request *rates* per endpoint are deflated by the category's mean
  // response size, which makes realized byte totals land on the mix.
  const auto& profiles = libraryProfiles();
  libraryEndpoints_.resize(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const LibraryProfile& profile = profiles[i];
    const std::string slug = sanitizeSlug(profile.prefix);
    const auto& mix = profile.destinationMix;
    const auto requestWeights = requestWeightsFromByteMix(mix);

    // Guarantee one endpoint per category with a meaningful byte share,
    // then distribute the rest by largest remainder over byte shares.
    std::size_t significant = 0;
    for (const auto& [category, share] : mix)
      if (share >= 0.03) ++significant;
    const std::size_t total = std::max<std::size_t>(
        static_cast<std::size_t>(profile.domainCount), significant);

    std::vector<std::size_t> counts(mix.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t m = 0; m < mix.size(); ++m) {
      const double exact = mix[m].second * static_cast<double>(total);
      counts[m] = static_cast<std::size_t>(exact);
      if (mix[m].second >= 0.03 && counts[m] == 0) counts[m] = 1;
      assigned += counts[m];
      remainders.emplace_back(exact - std::floor(exact), m);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t r = 0; assigned < total && r < remainders.size(); ++r) {
      ++counts[remainders[r].second];
      ++assigned;
    }

    for (std::size_t m = 0; m < mix.size(); ++m) {
      if (counts[m] == 0) continue;
      // Split the category's request weight over its endpoints so the
      // per-category rate is independent of endpoint multiplicity.
      const double perEndpointWeight =
          requestWeights[m] / static_cast<double>(counts[m]);
      for (std::size_t d = 0; d < counts[m]; ++d) {
        libraryEndpoints_[i].push_back({world.acquire(mix[m].first, slug, rng),
                                        std::string(mix[m].first),
                                        perEndpointWeight});
      }
    }
  }

  plans_.reserve(config_.appCount);
  for (std::size_t i = 0; i < config_.appCount; ++i) planApp(i, rng, world);

  // Repository view: the planned (analyzable) packages plus ARM-only ones
  // the §III-A filter must reject.
  repository_.reserve(plans_.size() + 16);
  for (const auto& plan : plans_)
    repository_.push_back({plan.packageName, plan.versions});
  const auto armOnlyCount = static_cast<std::size_t>(
      std::lround(static_cast<double>(config_.appCount) * config_.armOnlyFraction));
  for (std::size_t i = 0; i < armOnlyCount; ++i) {
    ApkVersionInfo version;
    version.versionCode = 1;
    version.dexTimestamp = 1'500'000'000 + i;
    version.abis = {"armeabi-v7a"};
    repository_.push_back(
        {"com.armonly.app" + std::to_string(i), {version}});
  }
}

std::string AppStoreGenerator::domainTruth(const std::string& domain) const {
  const auto it = domainTruth_.find(domain);
  return it == domainTruth_.end() ? "unknown" : it->second;
}

void AppStoreGenerator::planApp(std::size_t index, util::Rng& rng,
                                DomainWorld& world) {
  static const char* kWords[] = {"pixel", "nova",  "turbo", "happy", "magic",
                                 "swift", "lucky", "prime", "hyper", "metro"};
  AppPlan plan;
  plan.seed = rng.next() | 1;

  // Category by store weight.
  const auto& categories = appCategories();
  static thread_local std::vector<double> weights;  // static: same every call
  if (weights.size() != categories.size()) {
    weights.clear();
    for (const auto& category : categories)
      weights.push_back(appCountWeight(category));
  }
  plan.appCategory = categories[rng.weightedIndex(weights)];
  plan.cls = classOf(plan.appCategory);
  plan.packageName = std::string("com.") + kWords[rng.uniform(0, 9)] +
                     kWords[rng.uniform(0, 9)] + ".app" + std::to_string(index);

  const double archetypeRoll = rng.uniform01();
  plan.archetype = archetypeRoll < kAntFreeFraction ? AppPlan::Archetype::AntFree
                   : archetypeRoll < kAntFreeFraction + kAntOnlyFraction
                       ? AppPlan::Archetype::AntOnly
                       : AppPlan::Archetype::Mixed;

  // Library inclusion.
  const auto& profiles = libraryProfiles();
  std::vector<int> included;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const LibraryProfile& profile = profiles[i];
    if (plan.archetype == AppPlan::Archetype::AntFree &&
        isAntCategory(profile.radarCategory))
      continue;
    if (rng.chance(inclusionProbability(plan.cls, profile)))
      included.push_back(static_cast<int>(i));
  }
  if (plan.archetype == AppPlan::Archetype::AntOnly) {
    const bool hasAnt = std::any_of(included.begin(), included.end(), [&](int i) {
      return isAntCategory(profiles[static_cast<std::size_t>(i)].radarCategory);
    });
    if (!hasAnt) included.insert(included.begin(), 0);  // gms.ads
  }
  plan.bundledProfiles = included;

  // Traffic sources from active libraries.
  const double intensity = contentIntensity(plan.appCategory);
  for (const int profileIndex : included) {
    const LibraryProfile& profile = profiles[static_cast<std::size_t>(profileIndex)];
    const bool ant = isAntCategory(profile.radarCategory);
    if (plan.archetype == AppPlan::Archetype::AntOnly && !ant)
      continue;  // bundled but never exercised

    PlannedSource source;
    source.profileIndex = profileIndex;
    source.taskPackage = std::string(rng.pick(profile.activeSubpackages));
    // ProGuard-style obfuscation: many apps ship the same SDK with its
    // internals renamed one level deeper, multiplying the distinct
    // origin-library packages observed across the store (the paper sees
    // 8,652 of them) while prefix matching still recovers the category.
    if (rng.chance(0.40)) {
      static constexpr char kObf[] = {'a', 'b', 'c', 'd', 'e', 'f'};
      source.taskPackage += std::string(".") + kObf[rng.uniform(0, 5)];
    }
    const auto& endpoints = libraryEndpoints_[static_cast<std::size_t>(profileIndex)];
    // The source targets the library's whole endpoint roster; request-rate
    // weights (deflated by mean response size) decide how often each is
    // hit, so realized byte totals follow the destination byte-mix and the
    // per-run subset of contacted endpoints emerges from guard randomness.
    for (const auto& endpoint : endpoints) {
      source.domains.push_back(endpoint.domain);
      source.domainWeights.push_back(endpoint.requestWeight);
    }

    double requestScale = 1.0;
    if (profile.radarCategory == "Advertisement")
      requestScale = plan.cls == CategoryClass::Game ? 1.35
                     : plan.cls == CategoryClass::Media ? 1.0
                                                        : 0.85;
    else if (profile.radarCategory == "Development Aid")
      requestScale = intensity;
    else if (profile.radarCategory == "Game Engine")
      requestScale = plan.cls == CategoryClass::Game ? 1.5 : 0.2;
    source.meanRequestsPerRun =
        profile.meanRequestsPerRun * requestScale * rng.lognormal(0.0, 0.4);
    source.initRequestProb = profile.initRequestProb;
    source.requestBytesMin = profile.requestBytesMin;
    source.requestBytesMax = profile.requestBytesMax;
    source.initialDownload = profile.radarCategory == "Game Engine" &&
                             plan.cls == CategoryClass::Game &&
                             plan.archetype == AppPlan::Archetype::Mixed;
    plan.sources.push_back(std::move(source));
  }

  // First-party (developer-authored) traffic.
  if (plan.archetype != AppPlan::Archetype::AntOnly && rng.chance(0.85)) {
    PlannedSource source;
    source.profileIndex = -1;
    source.taskPackage = plan.packageName + ".net";
    const auto& mix = firstPartyDestinationMix(plan.cls);
    const auto requestWeights = requestWeightsFromByteMix(mix);
    const std::size_t domainCount = rng.uniform(1, 3);
    const std::string slug = "app" + std::to_string(index % 64);
    for (std::size_t d = 0; d < domainCount; ++d) {
      // Categories drawn by request rate; requests split evenly over the
      // app's own domains -> byte totals follow the first-party byte-mix.
      const std::size_t pick = rng.weightedIndex(requestWeights);
      source.domains.push_back(world.acquire(mix[pick].first, slug, rng));
      source.domainWeights.push_back(1.0);
    }
    source.meanRequestsPerRun = 7.0 * intensity * rng.lognormal(0.0, 0.55);
    source.initRequestProb = 0.5;
    source.requestBytesMin = 200;
    source.requestBytesMax = 700;
    plan.sources.push_back(std::move(source));
  }

  // Framework-originated advertisement traffic.
  if (plan.archetype == AppPlan::Archetype::Mixed && rng.chance(0.12)) {
    plan.systemAdTraffic = true;
    plan.systemAdDomain = world.acquire("advertisements", "exchange", rng);
  }

  // Method-count and coverage targets.
  const double rawMethods = rng.lognormal(std::log(42000.0), 0.55);
  plan.totalMethods = static_cast<std::size_t>(std::clamp(
      rawMethods * config_.methodScale, 300.0, 400000.0 * config_.methodScale));
  plan.coverageTarget =
      std::clamp(rng.lognormal(std::log(0.075), 0.75), 0.002, 0.55);
  plan.uiHandlers = static_cast<int>(rng.uniform(30, 110));

  // Repository versions (§III-A inputs).
  const std::size_t versionCount = rng.uniform(1, 3);
  const bool allDefaultDex = rng.chance(0.10);
  std::uint64_t timestamp = 1'400'000'000 + rng.uniform(0, 100'000'000);
  for (std::size_t v = 0; v < versionCount; ++v) {
    ApkVersionInfo version;
    version.versionCode = static_cast<std::uint32_t>(10 * (v + 1));
    version.dexTimestamp =
        allDefaultDex ? dex::kDefaultDexTimestamp : timestamp + v * 10'000'000;
    version.vtScanDate =
        rng.chance(allDefaultDex ? 1.0 : 0.7)
            ? 1'530'000'000 + rng.uniform(0, 30'000'000) + v * 1'000'000
            : 0;
    const double abiRoll = rng.uniform01();
    if (abiRoll < 0.30) {
      // pure-Java apk: no native libraries
    } else if (abiRoll < 0.80) {
      version.abis = {"x86", "armeabi-v7a"};
    } else {
      version.abis = {"x86_64", "x86", "arm64-v8a"};
    }
    plan.versions.push_back(std::move(version));
  }
  const auto chosen = selectApkVersion(plan.versions);
  plan.chosenVersion = chosen.value_or(0);

  // --- §14 scenario extensions: appended strictly after every legacy draw,
  // fed by an rng forked off plan.seed, so the flags-off world (and every
  // legacy field above) is byte-identical whatever the flags say.
  if (config_.scenarios.backgroundSync) {
    util::Rng syncRng(plan.seed ^ 0xB6C5'59ECULL);
    if (syncRng.chance(0.5)) {
      plan.syncDomain = world.acquire("internet_services",
                                      "sync" + std::to_string(index % 32),
                                      syncRng);
      plan.syncProb = 0.6;
    }
  }

  plans_.push_back(std::move(plan));
}

// ---------------------------------------------------------------------------
// Job expansion: plan -> (ApkFile, AppProgram).
// ---------------------------------------------------------------------------

AppStoreGenerator::Job AppStoreGenerator::makeJob(std::size_t index) const {
  const AppPlan& plan = plans_.at(index);
  util::Rng rng(plan.seed);
  const auto& profiles = libraryProfiles();

  rt::AppProgram program;
  // All program-method signatures also go into the dex, grouped by class.
  std::vector<std::pair<std::string, std::string>> dexEntries;  // (class, sig)
  const auto addProgramMethod = [&](const std::string& dottedClass,
                                    const std::string& method,
                                    std::vector<rt::Action> body,
                                    std::string_view params = "",
                                    std::string_view ret = "V") {
    std::string signature = makeSignature(dottedClass, method, params, ret);
    dexEntries.emplace_back(dottedClass, signature);
    return program.addMethod(std::move(signature), std::move(body));
  };

  // --- Traffic sources: helper -> task -> enqueue chains -------------------
  struct BuiltSource {
    std::vector<rt::MethodId> enqueuers;  // one per destination domain
    const PlannedSource* plan = nullptr;
  };
  std::vector<BuiltSource> builtSources;
  builtSources.reserve(plan.sources.size());

  // §14 keep-alive: requests to a domain that more than one source targets
  // (shared CDN-style infrastructure) ride one pooled connection per
  // domain, so a single socket ends up carrying logical requests issued
  // from *different* call stacks.
  std::unordered_map<std::string_view, int> domainSourceCount;
  if (config_.scenarios.keepAliveReuse) {
    for (const auto& source : plan.sources) {
      std::unordered_set<std::string_view> seen;
      for (const auto& domain : source.domains)
        if (seen.insert(domain).second) ++domainSourceCount[domain];
    }
  }
  // §14 adversarial apps: SDK sources launder their request stacks through
  // reflection trampolines in junk packages, or spoof builtin-named
  // wrapper frames. Laundering draws come from a forked rng and only
  // *insert* wrapper methods whose execution draws nothing, so the twin
  // app (flag off, same plan) replays the identical runtime rng stream.
  util::Rng advRng(plan.seed ^ 0xAD7E'25A1ULL);

  for (const auto& source : plan.sources) {
    BuiltSource built;
    built.plan = &source;
    const bool sync = source.profileIndex < 0 && rng.chance(0.5);

    enum class Launder { None, Reflect, Spoof };
    Launder launder = Launder::None;
    std::string junkPackage;
    if (config_.scenarios.adversarialApps && source.profileIndex >= 0 &&
        advRng.chance(0.6)) {
      if (advRng.chance(0.35)) {
        launder = Launder::Spoof;
      } else {
        launder = Launder::Reflect;
        // Junk dispatcher package: every component at most two characters,
        // exactly what the elision pass's junk-package rule keys on.
        static constexpr char kJunk[] = {'a', 'b', 'c', 'd',
                                         'e', 'f', 'g', 'h'};
        const std::uint64_t depth = advRng.uniform(2, 4);
        for (std::uint64_t c = 0; c < depth; ++c) {
          if (c != 0) junkPackage += '.';
          junkPackage += kJunk[advRng.uniform(0, 7)];
          if (advRng.chance(0.4)) junkPackage += kJunk[advRng.uniform(0, 7)];
        }
      }
    }
    for (std::size_t d = 0; d < source.domains.size(); ++d) {
      const std::string cls =
          source.taskPackage + (d == 0 ? ".b" : ".b" + std::to_string(d));
      rt::NetRequestAction request;
      request.domain = source.domains[d];
      request.port = rng.chance(0.85) ? 443 : 80;
      request.requestBytesMin = source.requestBytesMin;
      request.requestBytesMax = source.requestBytesMax;
      request.transfers =
          source.initialDownload ? 2 : (rng.chance(0.3) ? 2 : 1);
      request.engine = static_cast<rt::HttpEngine>(rng.uniform(0, 2));
      if (config_.scenarios.keepAliveReuse) {
        const auto it = domainSourceCount.find(source.domains[d]);
        request.keepAlive =
            (it != domainSourceCount.end() && it->second > 1) ||
            source.domains[d].find(".edgecache.") != std::string::npos;
        // Pooled requests pin the HTTPS port (overriding the draw above,
        // which still happens so the rng stream matches the flag-off
        // world): one "domain:443" pool key per CDN host means two
        // libraries' requests genuinely share a connection.
        if (request.keepAlive) request.port = 443;
      }

      // HTTP-level identifiers: some SDKs label their traffic with an
      // identifying User-Agent, the rest rides the platform default -- the
      // mix that makes header-based attribution unreliable (paper intro).
      if (source.profileIndex >= 0) {
        const LibraryProfile& sourceProfile =
            profiles[static_cast<std::size_t>(source.profileIndex)];
        request.path = std::string(requestPathFor(sourceProfile.radarCategory));
        const UserAgentProfile ua = userAgentProfileFor(sourceProfile.prefix);
        if (!ua.sdkUserAgent.empty() && rng.chance(ua.identifyProb))
          request.userAgent = std::string(ua.sdkUserAgent);
        request.post = sourceProfile.radarCategory == "Mobile Analytics" &&
                       rng.chance(0.8);
      } else {
        request.path = std::string(requestPathFor("Unknown"));
        if (rng.chance(0.30))
          request.userAgent =
              plan.packageName + "/" +
              std::to_string(plan.versions[plan.chosenVersion].versionCode) +
              " (Android 7.1.1)";
        request.post = rng.chance(0.25);
      }

      // Listing 1 shape: b.a holds the request, b.doInBackground calls it.
      const rt::MethodId helper = addProgramMethod(
          cls, "a", {request}, "Ljava/lang/String;", "Ljava/lang/Object;");
      const rt::MethodId task = addProgramMethod(
          cls, "doInBackground", {rt::CallAction{helper}},
          "[Ljava/lang/String;", "Ljava/lang/Object;");
      // Laundering wraps the *outermost* app frame of the request stack:
      // what the async queue runs is the trampoline, so the raw origin
      // scan sees junk (or a builtin-looking frame) where doInBackground
      // should be. Elision (and the footnote-2 filter for spoofs) must see
      // through to the SDK frame underneath.
      rt::MethodId entry = task;
      if (launder == Launder::Reflect) {
        entry = addProgramMethod(
            junkPackage + ".x" + std::to_string(builtSources.size()),
            "i" + std::to_string(d), {rt::ReflectiveCallAction{task}});
      } else if (launder == Launder::Spoof) {
        entry = addProgramMethod(
            "android.support.v7.sync.Dispatch" +
                std::to_string(builtSources.size()),
            "run" + std::to_string(d), {rt::CallAction{task}});
      }
      if (sync) {
        // Developer code on the UI thread calls straight into the fetch.
        built.enqueuers.push_back(entry);
      } else {
        const rt::MethodId enqueue = addProgramMethod(
            cls, "request", {rt::AsyncAction{entry}});
        built.enqueuers.push_back(enqueue);
      }
    }
    builtSources.push_back(std::move(built));
  }

  // --- Coverage subtrees -----------------------------------------------------
  const auto buildSubtree = [&](const std::string& packageBase, int treeId,
                                std::size_t size) -> std::optional<rt::MethodId> {
    if (size == 0) return std::nullopt;
    // Hub chain, each hub calling up to 24 empty leaves; depth stays well
    // under the interpreter's call-depth limit.
    constexpr std::size_t kLeavesPerHub = 24;
    std::vector<rt::MethodId> hubs;
    std::size_t made = 0;
    int hubIndex = 0;
    while (made < size) {
      const std::string cls =
          packageBase + ".T" + std::to_string(treeId) + "H" + std::to_string(hubIndex);
      std::vector<rt::Action> body;
      const std::size_t leaves = std::min(kLeavesPerHub, size - made);
      for (std::size_t l = 0; l < leaves; ++l) {
        const rt::MethodId leaf =
            addProgramMethod(cls, "w" + std::to_string(l), {}, "I", "I");
        body.push_back(rt::CallAction{leaf});
        ++made;
      }
      const rt::MethodId hub =
          addProgramMethod(cls, "run", std::move(body));
      ++made;  // the hub itself counts
      hubs.push_back(hub);
      ++hubIndex;
      if (hubs.size() > 40) break;  // keep depth bounded
    }
    // Chain hubs: hub[i] also calls hub[i+1]; build links by rewriting
    // bodies is impossible (methods are immutable once added), so add
    // chain wrappers instead.
    rt::MethodId next = hubs.back();
    for (std::size_t i = hubs.size() - 1; i-- > 0;) {
      const std::string cls = packageBase + ".T" + std::to_string(treeId) + "C" +
                              std::to_string(i);
      next = addProgramMethod(
          cls, "step", {rt::CallAction{hubs[i]}, rt::CallAction{next}});
    }
    return next;
  };

  const auto reachableBudget = static_cast<std::size_t>(
      plan.coverageTarget * static_cast<double>(plan.totalMethods));
  const std::size_t handlerCount = static_cast<std::size_t>(plan.uiHandlers);

  // A quarter of covered code sits inside bundled library packages (their
  // glue code runs even when the library produces no traffic).
  std::vector<std::string> subtreePackages = {plan.packageName + ".ui"};
  for (const int profileIndex : plan.bundledProfiles) {
    if (subtreePackages.size() >= 4) break;
    subtreePackages.push_back(
        std::string(profiles[static_cast<std::size_t>(profileIndex)].prefix) +
        ".internal");
  }

  const std::size_t onCreateShare = reachableBudget / 8;
  const std::size_t perHandler =
      handlerCount == 0 ? 0 : (reachableBudget - onCreateShare) / handlerCount;

  // --- Handlers ---------------------------------------------------------------
  // Expected monkey hits per handler, for trigger-guard calibration.
  const double hitsPerHandler =
      static_cast<double>(config_.expectedMonkeyEvents) /
      static_cast<double>(std::max<std::size_t>(handlerCount, 1));

  struct PendingGuard {
    double prob;
    rt::MethodId target;
  };
  std::vector<std::vector<PendingGuard>> handlerGuards(handlerCount);

  const auto spreadGuards = [&](rt::MethodId target, double expectedPerRun) {
    if (handlerCount == 0 || expectedPerRun <= 0.0) return;
    double probPerHandler = expectedPerRun / hitsPerHandler;
    std::size_t attachments = 1;
    if (probPerHandler > 0.9) {
      attachments = static_cast<std::size_t>(std::ceil(probPerHandler / 0.9));
      attachments = std::min(attachments, handlerCount);
      probPerHandler = probPerHandler / static_cast<double>(attachments);
    }
    for (std::size_t a = 0; a < attachments; ++a) {
      const std::size_t handler = rng.uniform(0, handlerCount - 1);
      handlerGuards[handler].push_back({std::min(probPerHandler, 1.0), target});
    }
  };

  for (const auto& built : builtSources) {
    // Split the source's request budget over its domains by request weight
    // (falls back to an even split when weights are missing or degenerate).
    const auto& weights = built.plan->domainWeights;
    double weightSum = 0.0;
    if (weights.size() == built.enqueuers.size())
      for (const double w : weights) weightSum += w;
    for (std::size_t e = 0; e < built.enqueuers.size(); ++e) {
      const double share =
          weightSum > 0.0 ? weights[e] / weightSum
                          : 1.0 / static_cast<double>(built.enqueuers.size());
      spreadGuards(built.enqueuers[e], built.plan->meanRequestsPerRun * share);
    }
  }

  // Background tasks (Rosen et al.): analytics flush their event queues
  // and ad SDKs prefetch after the app is backgrounded.
  for (std::size_t b = 0; b < builtSources.size(); ++b) {
    const BuiltSource& built = builtSources[b];
    if (built.plan->profileIndex < 0) continue;
    const LibraryProfile& sourceProfile =
        profiles[static_cast<std::size_t>(built.plan->profileIndex)];
    double backgroundProb = 0.0;
    if (sourceProfile.radarCategory == "Mobile Analytics") backgroundProb = 0.5;
    else if (sourceProfile.radarCategory == "Advertisement") backgroundProb = 0.25;
    else if (sourceProfile.radarCategory == "Utility") backgroundProb = 0.30;
    if (backgroundProb <= 0.0) continue;
    const rt::MethodId task = addProgramMethod(
        built.plan->taskPackage + ".BgSync" + std::to_string(b), "run",
        {rt::GuardAction{backgroundProb, built.enqueuers.front()}});
    program.backgroundTasks.push_back(task);
  }

  // §14 background sync: a first-party poller whose *only* call site is
  // the background-tick queue — traffic with no UI cause at all.
  if (config_.scenarios.backgroundSync && !plan.syncDomain.empty()) {
    rt::NetRequestAction request;
    request.domain = plan.syncDomain;
    request.port = 443;
    request.path = "/sync";
    request.requestBytesMin = 120;
    request.requestBytesMax = 420;
    request.transfers = 1;
    const std::string cls = plan.packageName + ".sync.Poller";
    const rt::MethodId fetch = addProgramMethod(cls, "fetch", {request});
    const rt::MethodId poll = addProgramMethod(
        cls, "run", {rt::GuardAction{plan.syncProb, fetch}});
    program.backgroundTasks.push_back(poll);
  }

  // Framework-originated ad traffic trigger.
  if (plan.systemAdTraffic) {
    rt::SystemRequestAction request;
    request.domain = plan.systemAdDomain;
    const rt::MethodId trigger = addProgramMethod(
        plan.packageName + ".ui.WebBanner", "refresh", {request});
    spreadGuards(trigger, 2.5);
  }

  std::vector<rt::MethodId> handlers;
  handlers.reserve(handlerCount);
  for (std::size_t h = 0; h < handlerCount; ++h) {
    std::vector<rt::Action> body;
    const std::string& base = subtreePackages[h % subtreePackages.size()];
    if (const auto subtree =
            buildSubtree(base, static_cast<int>(h), perHandler))
      body.push_back(rt::CallAction{*subtree});
    for (const auto& guard : handlerGuards[h])
      body.push_back(rt::GuardAction{guard.prob, guard.target});
    body.push_back(rt::SleepAction{static_cast<std::uint32_t>(rng.uniform(0, 3))});
    handlers.push_back(addProgramMethod(plan.packageName + ".ui.Handler" +
                                            std::to_string(h),
                                        "onClick", std::move(body),
                                        "Landroid/view/View;"));
  }

  // --- onCreate -----------------------------------------------------------------
  std::vector<rt::Action> onCreateBody;
  if (const auto subtree =
          buildSubtree(plan.packageName + ".ui", 9999, onCreateShare))
    onCreateBody.push_back(rt::CallAction{*subtree});
  for (const auto& built : builtSources) {
    if (built.plan->initRequestProb <= 0.0) continue;
    onCreateBody.push_back(rt::GuardAction{
        built.plan->initialDownload ? 0.95 : built.plan->initRequestProb,
        built.enqueuers.front()});
  }
  const rt::MethodId onCreate =
      addProgramMethod(plan.packageName + ".ui.MainActivity", "onCreate",
                       std::move(onCreateBody), "Landroid/os/Bundle;");

  program.onCreate = onCreate;
  program.uiHandlers = std::move(handlers);

  // --- Dex assembly ----------------------------------------------------------
  dex::ApkFile apk;
  apk.packageName = plan.packageName;
  apk.appCategory = plan.appCategory;
  const ApkVersionInfo& version = plan.versions.at(plan.chosenVersion);
  apk.versionCode = version.versionCode;
  apk.dexTimestamp = version.dexTimestamp;
  apk.vtScanDate = version.vtScanDate;
  apk.abis = version.abis;

  // Group program methods into classes.
  std::unordered_map<std::string, std::vector<std::string>> byClass;
  for (auto& [cls, signature] : dexEntries)
    byClass[cls].push_back(std::move(signature));
  std::size_t methodCount = program.methods.size();

  // Bulk (cold) library code.
  const auto addBulk = [&](const std::string& package, std::size_t count) {
    std::size_t made = 0;
    int classIndex = 0;
    while (made < count) {
      const std::string cls = package + ".a" + std::to_string(classIndex++);
      auto& methods = byClass[cls];
      const std::size_t inClass = std::min<std::size_t>(16, count - made);
      for (std::size_t m = 0; m < inClass; ++m)
        methods.push_back(makeSignature(cls, "m" + std::to_string(m), "I", "I"));
      made += inClass;
    }
    methodCount += count;
  };

  for (const int profileIndex : plan.bundledProfiles) {
    const LibraryProfile& profile = profiles[static_cast<std::size_t>(profileIndex)];
    const auto bulk = static_cast<std::size_t>(
        static_cast<double>(profile.bulkMethods) * config_.methodScale);
    addBulk(std::string(profile.prefix) + ".internal", bulk);
  }
  if (methodCount < plan.totalMethods)
    addBulk(plan.packageName + ".gen", plan.totalMethods - methodCount);

  // Multi-dex: respect the 64k method-reference limit per dex file.
  constexpr std::size_t kDexMethodLimit = 65536;
  apk.dexFiles.emplace_back();
  std::size_t inCurrentDex = 0;
  for (auto& [cls, methods] : byClass) {
    if (inCurrentDex + methods.size() > kDexMethodLimit) {
      apk.dexFiles.emplace_back();
      inCurrentDex = 0;
    }
    dex::ClassDef classDef;
    classDef.dottedName = cls;
    classDef.methods.reserve(methods.size());
    for (auto& signature : methods) classDef.methods.push_back({std::move(signature)});
    inCurrentDex += classDef.methods.size();
    apk.dexFiles.back().classes.push_back(std::move(classDef));
  }

  return Job{std::move(apk), std::move(program)};
}

}  // namespace libspector::store
