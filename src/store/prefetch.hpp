// Pipelined job generation (the corpus-preparation half of the pipeline).
//
// makeJob(i) is a pure function of the plan seed, which is what lets the
// dispatcher expand a 25,000-app corpus lazily — but the seed path expands
// each job inline in the dispatcher's job-source lock, so every emulator
// worker stalls behind one generator core. JobPrefetcher runs N generator
// threads that expand plans (and hash the apks, streaming) *ahead* of the
// consumer, through a bounded reorder window that preserves index order
// exactly. Determinism is the contract: at any thread count the consumer
// sees the same (index, apk bytes, sha256, program) sequence the serial
// path produces, proven by tests/store/prefetch_determinism_test.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "store/generator.hpp"

namespace libspector::store {

struct PrefetchConfig {
  /// Generator threads expanding plans ahead of the consumer. 0 = pull
  /// through: next() expands synchronously on the calling thread — the
  /// serial seed path, kept as the determinism baseline.
  std::size_t threads = 0;
  /// Upper bound on jobs outstanding at once (buffered for the consumer
  /// plus in expansion), so memory stays O(capacity) jobs no matter how
  /// far the generators could run ahead of a slow consumer.
  std::size_t capacity = 32;
  /// Also compute each apk's sha256 during expansion (one streaming walk),
  /// so emulator workers and the supervisor never re-serialize to hash.
  bool hashApks = true;
};

/// Bounded, order-preserving pool of generator threads over a fixed index
/// list. Single consumer (the dispatcher's job source, which is already
/// serialized by the source lock); stats() is safe from any thread.
class JobPrefetcher {
 public:
  struct Item {
    /// Original job index (resumed studies pass gap indices here, so
    /// replayed corpora keep their original identities).
    std::size_t index = 0;
    AppStoreGenerator::Job job;
    /// Hex digest of the apk's serialized bytes; empty when hashApks off.
    std::string apkSha256;
  };

  struct Stats {
    std::size_t produced = 0;   // jobs expanded
    std::size_t delivered = 0;  // jobs handed to the consumer
    /// High-water mark of outstanding jobs (claimed by a generator but not
    /// yet delivered); never exceeds capacity.
    std::size_t maxOutstanding = 0;
    /// next() calls that found the head job not ready yet — the stall the
    /// prefetcher exists to remove.
    std::size_t consumerWaits = 0;
  };

  /// Expand exactly `indices`, in that order. The generator must outlive
  /// the prefetcher.
  JobPrefetcher(const AppStoreGenerator& generator,
                std::vector<std::size_t> indices, PrefetchConfig config = {});
  /// Convenience: the whole corpus, indices [0, generator.appCount()).
  explicit JobPrefetcher(const AppStoreGenerator& generator,
                         PrefetchConfig config = {});
  /// Stops the pool and joins; undelivered jobs are discarded. Never
  /// blocks on the consumer — safe to destroy after a partial drain.
  ~JobPrefetcher();

  JobPrefetcher(const JobPrefetcher&) = delete;
  JobPrefetcher& operator=(const JobPrefetcher&) = delete;

  /// The next item in index-list order, or nullopt once exhausted
  /// (nullopt is sticky). Blocks until the head item is ready.
  [[nodiscard]] std::optional<Item> next();

  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] Item expand(std::size_t position) const;
  void generatorLoop();

  const AppStoreGenerator& generator_;
  const std::vector<std::size_t> indices_;
  const PrefetchConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable windowOpen_;  // generators wait for window space
  std::condition_variable headReady_;   // consumer waits for the head item
  std::map<std::size_t, Item> ready_;   // position -> expanded item
  std::size_t nextClaim_ = 0;           // next position a generator takes
  std::size_t head_ = 0;                // next position next() returns
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> generators_;
};

}  // namespace libspector::store
