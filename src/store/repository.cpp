#include "store/repository.hpp"

#include <algorithm>

namespace libspector::store {

bool ApkVersionInfo::isX86Compatible() const noexcept {
  if (abis.empty()) return true;  // pure-Java apk
  return std::any_of(abis.begin(), abis.end(), [](const std::string& abi) {
    return abi == "x86" || abi == "x86_64";
  });
}

std::optional<std::size_t> selectApkVersion(
    const std::vector<ApkVersionInfo>& versions) {
  if (versions.empty()) return std::nullopt;

  std::optional<std::size_t> bestByDex;
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].hasDefaultDexTimestamp()) continue;
    if (!bestByDex || versions[i].dexTimestamp > versions[*bestByDex].dexTimestamp)
      bestByDex = i;
  }
  if (bestByDex) return bestByDex;

  std::optional<std::size_t> bestByVt;
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].vtScanDate == 0) continue;
    if (!bestByVt || versions[i].vtScanDate > versions[*bestByVt].vtScanDate)
      bestByVt = i;
  }
  return bestByVt;
}

std::vector<std::pair<std::size_t, std::size_t>> selectCorpus(
    const std::vector<RepositoryEntry>& repository) {
  std::vector<std::pair<std::size_t, std::size_t>> selected;
  for (std::size_t e = 0; e < repository.size(); ++e) {
    const auto version = selectApkVersion(repository[e].versions);
    if (!version) continue;
    if (!repository[e].versions[*version].isX86Compatible()) continue;
    selected.emplace_back(e, *version);
  }
  return selected;
}

}  // namespace libspector::store
