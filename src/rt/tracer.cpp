#include "rt/tracer.hpp"

namespace libspector::rt {

RingBufferTracer::RingBufferTracer(std::size_t capacity) : capacity_(capacity) {
  buffer_.reserve(capacity);
}

void RingBufferTracer::onMethodEntry(std::string_view signature) {
  if (buffer_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  buffer_.emplace_back(signature);
}

std::vector<std::string> RingBufferTracer::traceFile() const { return buffer_; }

void UniqueMethodTracer::onMethodEntry(std::string_view signature) {
  ++totalEntries_;
  auto [it, inserted] = seen_.emplace(signature);
  if (inserted) order_.emplace_back(*it);
}

std::vector<std::string> UniqueMethodTracer::traceFile() const { return order_; }

}  // namespace libspector::rt
