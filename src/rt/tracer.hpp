// Method tracing (the Android Profiler role, paper §II-B1).
//
// The stock profiler stores every method *call* into a fixed user-specified
// buffer, which fills within seconds; Libspector's ART modification records
// each unique method only on its first invocation.  Both variants are
// implemented so the ablation bench can quantify the difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace libspector::rt {

/// Receives one event per method entry. App methods report their full type
/// signature, framework methods their frame name.
class MethodTracer {
 public:
  virtual ~MethodTracer() = default;

  virtual void onMethodEntry(std::string_view signature) = 0;

  /// A pooled keep-alive connection started carrying a new logical request
  /// (ordinal >= 1; the connect itself is ordinal 0 and not reported here).
  /// Default no-op so the stock tracers ignore it; core::MethodMonitor
  /// records these as the request-boundary artifact records.
  virtual void onRequestBoundary(std::uint64_t socketId, std::uint32_t ordinal,
                                 std::uint64_t timestampMs) {
    (void)socketId;
    (void)ordinal;
    (void)timestampMs;
  }

  /// The method trace file written at the end of an experiment: the list of
  /// recorded entries (semantics depend on the tracer variant).
  [[nodiscard]] virtual std::vector<std::string> traceFile() const = 0;

  /// Entries that could not be recorded (buffer exhaustion).
  [[nodiscard]] virtual std::size_t droppedCount() const noexcept = 0;
};

/// Stock behaviour: bounded buffer, records repeated calls, drops on overflow.
class RingBufferTracer final : public MethodTracer {
 public:
  explicit RingBufferTracer(std::size_t capacity);

  void onMethodEntry(std::string_view signature) override;
  [[nodiscard]] std::vector<std::string> traceFile() const override;
  [[nodiscard]] std::size_t droppedCount() const noexcept override { return dropped_; }

 private:
  std::size_t capacity_;
  std::vector<std::string> buffer_;
  std::size_t dropped_ = 0;
};

/// The paper's modification: one record per unique method, never drops.
class UniqueMethodTracer final : public MethodTracer {
 public:
  void onMethodEntry(std::string_view signature) override;
  [[nodiscard]] std::vector<std::string> traceFile() const override;
  [[nodiscard]] std::size_t droppedCount() const noexcept override { return 0; }

  [[nodiscard]] std::size_t uniqueCount() const noexcept { return seen_.size(); }
  [[nodiscard]] std::size_t totalEntries() const noexcept { return totalEntries_; }

 private:
  std::unordered_set<std::string> seen_;
  std::vector<std::string> order_;  // first-invocation order
  std::size_t totalEntries_ = 0;
};

}  // namespace libspector::rt
