// Framework wrapper chains.
//
// Android's HTTP plumbing appears in every socket-creating stack trace
// (Listing 1): okhttp/HttpURLConnection/Apache frames between the app code
// and java.net.Socket.connect, and AsyncTask/FutureTask frames beneath
// background work.  These frame-name chains reproduce that structure.
#pragma once

#include <span>
#include <string_view>

#include "rt/action.hpp"

namespace libspector::rt {

/// Wrapper frames for an HTTP engine, ordered outermost (called first) to
/// innermost; the last element is always "java.net.Socket.connect".
[[nodiscard]] std::span<const std::string_view> engineChain(HttpEngine engine);

/// Frames beneath an AsyncTask body, ordered outermost to innermost:
/// {"java.util.concurrent.FutureTask.run", "android.os.AsyncTask$2.call"}.
[[nodiscard]] std::span<const std::string_view> asyncTaskChain();

/// Frames of a framework-owned thread issuing traffic with no app code on
/// the stack (system WebView fetching ad content).
[[nodiscard]] std::span<const std::string_view> systemThreadChain();

/// The frame name every socket post-hook is keyed on.
inline constexpr std::string_view kSocketConnectFrame = "java.net.Socket.connect";

/// The hook key fired when a pooled keep-alive connection carries a new
/// logical request: no Socket.connect happens, but the Socket Supervisor
/// must still observe the request's call stack. Named after the okhttp
/// frame a reused-connection request actually goes through.
inline constexpr std::string_view kRequestBoundaryFrame =
    "com.android.okhttp.internal.http.HttpEngine.sendRequest";

/// Reflection trampoline markers: the framework frame a ReflectiveCallAction
/// pushes between caller and callee, and the proxy variant. Attribution's
/// trampoline-elision pass treats an app frame sitting directly outside one
/// of these as reflection-invoked.
inline constexpr std::string_view kReflectMethodInvokeFrame =
    "java.lang.reflect.Method.invoke";
inline constexpr std::string_view kReflectProxyInvokeFrame =
    "java.lang.reflect.Proxy.invoke";

}  // namespace libspector::rt
