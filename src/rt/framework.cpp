#include "rt/framework.hpp"

#include <array>

namespace libspector::rt {

namespace {

// Outermost -> innermost; mirrors Listing 1 of the paper.
constexpr std::array<std::string_view, 9> kOkHttpChain = {
    "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect",
    "com.android.okhttp.internal.huc.HttpURLConnectionImpl.execute",
    "com.android.okhttp.internal.http.HttpEngine.sendRequest",
    "com.android.okhttp.internal.http.HttpEngine.connect",
    "com.android.okhttp.OkHttpClient$1.connectAndSetOwner",
    "com.android.okhttp.Connection.connectAndSetOwner",
    "com.android.okhttp.Connection.connect",
    "com.android.okhttp.internal.Platform.connectSocket",
    "java.net.Socket.connect",
};

constexpr std::array<std::string_view, 5> kUrlConnectionChain = {
    "java.net.URL.openConnection",
    "com.android.okhttp.internal.huc.HttpURLConnectionImpl.getInputStream",
    "com.android.okhttp.internal.http.HttpEngine.connect",
    "com.android.okhttp.internal.Platform.connectSocket",
    "java.net.Socket.connect",
};

constexpr std::array<std::string_view, 5> kApacheChain = {
    "org.apache.http.impl.client.AbstractHttpClient.execute",
    "org.apache.http.impl.client.DefaultRequestDirector.execute",
    "org.apache.http.impl.conn.AbstractPoolEntry.open",
    "org.apache.http.impl.conn.DefaultClientConnectionOperator.openConnection",
    "java.net.Socket.connect",
};

constexpr std::array<std::string_view, 2> kAsyncTaskChain = {
    "java.util.concurrent.FutureTask.run",
    "android.os.AsyncTask$2.call",
};

constexpr std::array<std::string_view, 4> kSystemThreadChain = {
    "java.lang.Thread.run",
    "android.os.Handler.dispatchMessage",
    "android.webkit.WebViewClient.onLoadResource",
    "com.android.webview.chromium.WebViewChromium.loadUrl",
};

}  // namespace

std::span<const std::string_view> engineChain(HttpEngine engine) {
  switch (engine) {
    case HttpEngine::OkHttp: return kOkHttpChain;
    case HttpEngine::UrlConnection: return kUrlConnectionChain;
    case HttpEngine::ApacheHttp: return kApacheChain;
  }
  return kOkHttpChain;
}

std::span<const std::string_view> asyncTaskChain() { return kAsyncTaskChain; }

std::span<const std::string_view> systemThreadChain() { return kSystemThreadChain; }

}  // namespace libspector::rt
