// The ART-like runtime: executes an AppProgram against a NetworkStack while
// maintaining a Java-style call stack, feeding the method tracer, and firing
// Xposed-style post-hooks on socket creation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/stack.hpp"
#include "rt/action.hpp"
#include "rt/framework.hpp"
#include "rt/program.hpp"
#include "rt/scenario.hpp"
#include "rt/tracer.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace libspector::rt {

/// One frame of a captured stack trace (Java getStackTrace analogue),
/// innermost first.
struct StackFrameSnapshot {
  std::string name;              // "com.foo.Bar.baz"
  std::int32_t methodId = -1;    // AppProgram method id; -1 for framework frames

  [[nodiscard]] bool isAppFrame() const noexcept { return methodId >= 0; }
  [[nodiscard]] bool operator==(const StackFrameSnapshot&) const = default;
};

class Interpreter;

/// Context delivered to a post-hook right after a socket is connected:
/// the connection exists and has valid parameters (paper §II-B2a).
/// The runtime reference is mutable — Xposed modules may interact with the
/// process they instrument (the Socket Supervisor sends datagrams).
struct SocketHookContext {
  net::SocketId socketId = 0;
  Interpreter& runtime;
  /// Which logical request on this socket the hook observes: 0 for the
  /// connect itself (kSocketConnectFrame), >= 1 for each keep-alive reuse
  /// (kRequestBoundaryFrame).
  std::uint32_t requestOrdinal = 0;
};

using PostHook = std::function<void(const SocketHookContext&)>;

/// Context delivered to a pre-connect hook *before* the socket exists.
/// Policy modules (BorderPatrol-style, §IV-E) veto connections here.
struct PreConnectContext {
  const std::string& domain;
  std::uint16_t port = 0;
  Interpreter& runtime;
};

/// Return false to veto the connection (it is never attempted).
using PreConnectHook = std::function<bool(const PreConnectContext&)>;

struct InterpreterLimits {
  int maxCallDepth = 48;
  std::size_t maxActionsPerEntry = 20000;
  std::size_t maxAsyncPerDrain = 256;
};

class Interpreter {
 public:
  Interpreter(const AppProgram& program, net::NetworkStack& stack,
              MethodTracer& tracer, util::SimClock& clock, util::Rng rng,
              InterpreterLimits limits = {});

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Install a post-hook on a frame name (the Xposed attachment point).
  void registerPostHook(std::string frameName, PostHook hook);

  /// Install a pre-connect hook; any hook returning false blocks the
  /// connection before the socket is created.
  void registerPreConnectHook(PreConnectHook hook);

  /// Enable scenario behaviours (connection pooling, reflection
  /// trampolines). All off by default; with all off the runtime is
  /// byte-identical to the seed interpreter.
  void setScenario(const ScenarioConfig& scenario) { scenario_ = scenario; }
  [[nodiscard]] const ScenarioConfig& scenario() const noexcept {
    return scenario_;
  }

  /// Close every pooled keep-alive connection (FIN/ACK teardown in the
  /// capture). The emulator calls this when the app is torn down, before
  /// artifacts are collected; idempotent.
  void closePooledConnections();

  /// Run the app's onCreate entry point and drain resulting async work.
  void start();

  /// Deliver one UI event: picks a random handler (monkey semantics) and
  /// drains async work it scheduled. Returns false when the app has no UI
  /// handlers (nothing to exercise).
  bool dispatchUiEvent();

  /// Run queued AsyncTask bodies and framework-thread requests.
  void drainAsync();

  /// One background tick: run every backgroundTask under the AsyncTask
  /// wrapper frames (the app is no longer in the foreground; whatever it
  /// transmits now is background traffic).
  void runBackgroundTick();

  /// Snapshot of the current call stack, innermost frame first — only
  /// meaningful from inside a hook.
  [[nodiscard]] std::vector<StackFrameSnapshot> getStackTrace() const;

  [[nodiscard]] std::size_t socketsCreated() const noexcept { return socketsCreated_; }
  [[nodiscard]] std::size_t connectionsReused() const noexcept { return connectionsReused_; }
  [[nodiscard]] std::size_t connectsBlocked() const noexcept { return connectsBlocked_; }
  [[nodiscard]] std::size_t methodEntries() const noexcept { return methodEntries_; }
  [[nodiscard]] std::size_t uiEventsDelivered() const noexcept { return uiEvents_; }
  [[nodiscard]] const AppProgram& program() const noexcept { return program_; }

  /// The emulator network stack this runtime drives. Hook modules use it to
  /// read connection parameters (via hook::connectionParameters) and to
  /// send their UDP report datagrams.
  [[nodiscard]] net::NetworkStack& networkStack() noexcept { return stack_; }
  [[nodiscard]] const net::NetworkStack& networkStack() const noexcept { return stack_; }

  /// The emulator's simulated clock (read-only view).
  [[nodiscard]] const util::SimClock& clock() const noexcept { return clock_; }

 private:
  struct LiveFrame {
    std::string_view name;  // stable storage: program method or framework constant
    std::int32_t methodId = -1;
  };

  void runMethod(MethodId id, int depth);
  void execAction(const Action& action, int depth);
  void doNetRequest(const NetRequestAction& request);
  void runSystemRequest(const SystemRequestAction& request);
  void pushFrameworkFrame(std::string_view name);
  void firePostHooks(std::string_view frameName, net::SocketId socketId,
                     std::uint32_t requestOrdinal = 0);
  void runTransfers(const NetRequestAction& request, net::SocketId socketId);

  const AppProgram& program_;
  net::NetworkStack& stack_;
  MethodTracer& tracer_;
  util::SimClock& clock_;
  util::Rng rng_;
  InterpreterLimits limits_;
  ScenarioConfig scenario_;

  std::vector<LiveFrame> liveStack_;
  std::unordered_map<std::string, std::vector<PostHook>> postHooks_;
  std::vector<PreConnectHook> preConnectHooks_;
  std::deque<MethodId> asyncQueue_;
  std::deque<SystemRequestAction> systemQueue_;
  /// Keep-alive pool: domain:port -> open socket, plus the ordinal the
  /// *next* logical request on each pooled socket gets (connect = 0).
  std::unordered_map<std::string, net::SocketId> connectionPool_;
  std::unordered_map<net::SocketId, std::uint32_t> nextRequestOrdinal_;

  std::size_t actionsThisEntry_ = 0;
  std::size_t socketsCreated_ = 0;
  std::size_t connectionsReused_ = 0;
  std::size_t connectsBlocked_ = 0;
  std::size_t methodEntries_ = 0;
  std::size_t uiEvents_ = 0;
};

}  // namespace libspector::rt
