// The micro-bytecode app methods are made of.
//
// The paper runs real Dalvik bytecode; our substitute gives each method a
// small list of actions sufficient to reproduce everything Libspector
// observes: nested Java calls (stack shape), HTTP engine usage (Listing 1
// wrapper chains), socket creation, async dispatch and framework-originated
// traffic.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace libspector::rt {

/// Index of a method in an AppProgram's method table.
using MethodId = std::uint32_t;

/// HTTP engines an app can issue requests through; each produces the
/// corresponding framework wrapper chain in the stack trace.
enum class HttpEngine : std::uint8_t { OkHttp = 0, UrlConnection = 1, ApacheHttp = 2 };

/// Invoke another app method (pushes a stack frame).
struct CallAction {
  MethodId callee = 0;
};

/// Issue an HTTP-style request: resolve + connect + `transfers`
/// request/response exchanges + close, through `engine`'s wrapper chain.
struct NetRequestAction {
  std::string domain;
  std::uint16_t port = 443;
  std::uint32_t requestBytesMin = 200;
  std::uint32_t requestBytesMax = 1200;
  std::uint8_t transfers = 1;
  HttpEngine engine = HttpEngine::OkHttp;
  /// HTTP-level identifiers visible on the wire (empty userAgent = the
  /// platform default Dalvik UA is filled in by the interpreter).
  std::string path = "/";
  std::string userAgent;
  bool post = false;
  /// Keep-alive: reuse a pooled connection to domain:port when one exists
  /// (firing a request-boundary hook instead of connecting) and leave the
  /// socket open afterwards. Only honoured when the runtime's
  /// ScenarioConfig::keepAliveReuse flag is on; otherwise behaves exactly
  /// like a one-shot request.
  bool keepAlive = false;
};

/// The stock HttpURLConnection User-Agent — the "generic identifier" the
/// paper calls out as breaking header-based attribution.
inline constexpr const char* kDefaultUserAgent =
    "Dalvik/2.1.0 (Linux; U; Android 7.1.1; sdk_google_phone_x86 Build/NMF26X)";

/// Advance simulated time (computation, rendering, media playback...).
struct SleepAction {
  std::uint32_t ms = 0;
};

/// Schedule an app method on the AsyncTask pool; it runs at the next drain
/// point under the AsyncTask$2.call / FutureTask.run wrapper frames.
struct AsyncAction {
  MethodId task = 0;
};

/// A request issued later by a framework-owned thread (WebView, media
/// stack): its stack trace contains no app frames at all, producing the
/// "*-Advertisement"-style built-in traffic of Fig. 3.
struct SystemRequestAction {
  std::string domain;
  std::uint16_t port = 443;
  std::uint32_t requestBytesMin = 150;
  std::uint32_t requestBytesMax = 600;
};

/// Invoke `callee` with probability `prob` (apps gate work on state the
/// monkey drives randomly — cache hits, ad refresh timers, screen position).
struct GuardAction {
  double prob = 1.0;
  MethodId callee = 0;
};

/// Invoke `callee` through the reflection machinery: the runtime pushes a
/// java.lang.reflect.Method.invoke framework frame between caller and
/// callee, exactly the trampoline shape adversarial apps use to launder
/// which library issued a request (ScenarioConfig::adversarialApps).
struct ReflectiveCallAction {
  MethodId callee = 0;
};

using Action =
    std::variant<CallAction, NetRequestAction, SleepAction, AsyncAction,
                 SystemRequestAction, GuardAction, ReflectiveCallAction>;

}  // namespace libspector::rt
