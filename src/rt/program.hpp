// An executable app: the reachable call graph behind an apk.
//
// The apk's dex files list *all* method signatures (tens of thousands);
// the AppProgram holds bodies only for the methods the app can actually
// reach at runtime — UI handlers, their callees, async tasks.  The gap
// between the two is what method coverage (paper §IV-C) measures.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dex/type_signature.hpp"
#include "rt/action.hpp"

namespace libspector::rt {

struct MethodInfo {
  /// Full smali type signature; must also appear in the apk's dex files.
  std::string signature;
  /// Frame name ("com.foo.Bar.baz") cached from the signature.
  std::string frameName;
  std::vector<Action> body;
};

struct AppProgram {
  std::vector<MethodInfo> methods;
  /// Run once when the app starts (Activity.onCreate analogue).
  std::optional<MethodId> onCreate;
  /// Entry points the monkey can hit with UI events.
  std::vector<MethodId> uiHandlers;
  /// Tasks the app schedules after being sent to background (analytics
  /// flushes, ad prefetch): Rosen et al. observe most background traffic
  /// lands within the first minute.
  std::vector<MethodId> backgroundTasks;

  /// Append a method; returns its id. The frame name is derived from the
  /// signature (throws std::invalid_argument on a malformed signature).
  MethodId addMethod(std::string signature, std::vector<Action> body) {
    auto parsed = dex::TypeSignature::parse(signature);
    if (!parsed)
      throw std::invalid_argument("AppProgram: bad signature " + signature);
    methods.push_back(
        {std::move(signature), parsed->frameName(), std::move(body)});
    return static_cast<MethodId>(methods.size() - 1);
  }

  [[nodiscard]] const MethodInfo& method(MethodId id) const {
    return methods.at(id);
  }
};

}  // namespace libspector::rt
