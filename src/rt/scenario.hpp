// Scenario flags for the simulated substrate (ROADMAP "scenario
// diversity" axis).
//
// The seed world emits monkey-driven, plain-TCP, one-request-per-socket,
// well-behaved apps. Each flag here opens one additional workload — in the
// generator (what apps *do*) and in the runtime (what the emulator
// *allows*) — while the all-flags-off world stays byte-identical to the
// seed study (pinned by tests/integration/scenario_matrix_test.cpp).
#pragma once

namespace libspector::rt {

struct ScenarioConfig {
  /// Connection reuse: apps mark requests keep-alive, the runtime pools one
  /// TCP connection per domain:port and carries later logical requests —
  /// from *different* call stacks — over it, announcing each with a
  /// request-boundary hook (kRequestBoundaryFrame) instead of a connect.
  bool keepAliveReuse = false;
  /// Adversarial apps: generated templates launder network-issuing stacks
  /// through reflection-style trampolines (obfuscated junk packages under
  /// java.lang.reflect.Method.invoke) and spoof builtin frame names, so
  /// naive innermost-app-frame attribution blames the wrong "library".
  bool adversarialApps = false;
  /// Background-sync traffic: generated apps gain sync tasks that transmit
  /// with no UI cause (the emulator's background tick is their only
  /// trigger), exercising flows whose stacks carry no UI handler frames.
  bool backgroundSync = false;

  [[nodiscard]] bool any() const noexcept {
    return keepAliveReuse || adversarialApps || backgroundSync;
  }
  [[nodiscard]] bool operator==(const ScenarioConfig&) const = default;
};

}  // namespace libspector::rt
