#include "rt/interpreter.hpp"

#include <algorithm>

namespace libspector::rt {

Interpreter::Interpreter(const AppProgram& program, net::NetworkStack& stack,
                         MethodTracer& tracer, util::SimClock& clock,
                         util::Rng rng, InterpreterLimits limits)
    : program_(program),
      stack_(stack),
      tracer_(tracer),
      clock_(clock),
      rng_(rng),
      limits_(limits) {}

void Interpreter::registerPostHook(std::string frameName, PostHook hook) {
  postHooks_[std::move(frameName)].push_back(std::move(hook));
}

void Interpreter::registerPreConnectHook(PreConnectHook hook) {
  preConnectHooks_.push_back(std::move(hook));
}

void Interpreter::start() {
  if (program_.onCreate) {
    actionsThisEntry_ = 0;
    runMethod(*program_.onCreate, 0);
  }
  drainAsync();
}

bool Interpreter::dispatchUiEvent() {
  ++uiEvents_;
  if (program_.uiHandlers.empty()) return false;
  const MethodId handler =
      program_.uiHandlers[rng_.uniform(0, program_.uiHandlers.size() - 1)];
  actionsThisEntry_ = 0;
  runMethod(handler, 0);
  drainAsync();
  return true;
}

void Interpreter::drainAsync() {
  std::size_t drained = 0;
  while ((!asyncQueue_.empty() || !systemQueue_.empty()) &&
         drained < limits_.maxAsyncPerDrain) {
    if (!asyncQueue_.empty()) {
      const MethodId task = asyncQueue_.front();
      asyncQueue_.pop_front();
      // AsyncTask bodies run beneath the executor wrapper frames.
      const auto chain = asyncTaskChain();
      for (const auto frame : chain) pushFrameworkFrame(frame);
      actionsThisEntry_ = 0;
      runMethod(task, 0);
      liveStack_.resize(liveStack_.size() - chain.size());
    } else {
      const SystemRequestAction request = systemQueue_.front();
      systemQueue_.pop_front();
      runSystemRequest(request);
    }
    ++drained;
  }
}

void Interpreter::runBackgroundTick() {
  for (const MethodId task : program_.backgroundTasks)
    asyncQueue_.push_back(task);
  drainAsync();
}

std::vector<StackFrameSnapshot> Interpreter::getStackTrace() const {
  std::vector<StackFrameSnapshot> trace;
  trace.reserve(liveStack_.size());
  for (auto it = liveStack_.rbegin(); it != liveStack_.rend(); ++it)
    trace.push_back({std::string(it->name), it->methodId});
  return trace;
}

void Interpreter::runMethod(MethodId id, int depth) {
  if (depth >= limits_.maxCallDepth) return;  // Java would StackOverflowError
  const MethodInfo& method = program_.method(id);
  liveStack_.push_back({method.frameName, static_cast<std::int32_t>(id)});
  ++methodEntries_;
  tracer_.onMethodEntry(method.signature);
  for (const Action& action : method.body) {
    if (++actionsThisEntry_ > limits_.maxActionsPerEntry) break;
    execAction(action, depth);
  }
  liveStack_.pop_back();
}

void Interpreter::execAction(const Action& action, int depth) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, CallAction>) {
          runMethod(a.callee, depth + 1);
        } else if constexpr (std::is_same_v<T, NetRequestAction>) {
          doNetRequest(a);
        } else if constexpr (std::is_same_v<T, SleepAction>) {
          clock_.advance(a.ms);
        } else if constexpr (std::is_same_v<T, AsyncAction>) {
          asyncQueue_.push_back(a.task);
        } else if constexpr (std::is_same_v<T, SystemRequestAction>) {
          systemQueue_.push_back(a);
        } else if constexpr (std::is_same_v<T, GuardAction>) {
          if (rng_.chance(a.prob)) runMethod(a.callee, depth + 1);
        } else if constexpr (std::is_same_v<T, ReflectiveCallAction>) {
          // Reflection trampoline: the callee runs beneath a
          // Method.invoke framework frame, exactly what a laundered stack
          // trace shows between caller and target.
          pushFrameworkFrame(kReflectMethodInvokeFrame);
          runMethod(a.callee, depth + 1);
          liveStack_.pop_back();
        }
      },
      action);
}

void Interpreter::pushFrameworkFrame(std::string_view name) {
  liveStack_.push_back({name, -1});
  tracer_.onMethodEntry(name);
}

void Interpreter::firePostHooks(std::string_view frameName,
                                net::SocketId socketId,
                                std::uint32_t requestOrdinal) {
  const auto it = postHooks_.find(std::string(frameName));
  if (it == postHooks_.end()) return;
  const SocketHookContext context{socketId, *this, requestOrdinal};
  for (const PostHook& hook : it->second) hook(context);
}

void Interpreter::doNetRequest(const NetRequestAction& request) {
  const auto chain = engineChain(request.engine);
  for (const auto frame : chain) pushFrameworkFrame(frame);

  const bool pooled = scenario_.keepAliveReuse && request.keepAlive;
  if (pooled) {
    const auto it = connectionPool_.find(request.domain + ':' +
                                         std::to_string(request.port));
    if (it != connectionPool_.end()) {
      // Reuse: the connection already exists, so no pre-connect hooks run
      // (there is no connect to veto) and no Socket.connect fires. The
      // Socket Supervisor instead observes the new logical request — with
      // the *current* call stack — through the request-boundary hook, and
      // the boundary is recorded for the run artifacts. The boundary
      // report's timestamp precedes every packet of this request (the
      // simulated clock only moves forward inside transfer()), which is
      // exactly what per-request flow splitting partitions on.
      const net::SocketId socketId = it->second;
      const std::uint32_t ordinal = nextRequestOrdinal_[socketId]++;
      ++connectionsReused_;
      tracer_.onRequestBoundary(socketId, ordinal, clock_.now());
      firePostHooks(kRequestBoundaryFrame, socketId, ordinal);
      runTransfers(request, socketId);
      liveStack_.resize(liveStack_.size() - chain.size());
      return;
    }
  }

  // Pre-connect hooks may veto (policy enforcement): the connection is then
  // never attempted — no socket, no DNS beyond what the stack already did.
  const PreConnectContext preContext{request.domain, request.port, *this};
  for (const PreConnectHook& hook : preConnectHooks_) {
    if (!hook(preContext)) {
      ++connectsBlocked_;
      liveStack_.resize(liveStack_.size() - chain.size());
      return;
    }
  }

  const auto connection = stack_.connectTcp(request.domain, request.port);
  if (connection) {
    ++socketsCreated_;
    // Post-hook semantics: the connection exists when the hook observes it.
    firePostHooks(kSocketConnectFrame, connection->id);
    runTransfers(request, connection->id);
    if (pooled) {
      connectionPool_.emplace(
          request.domain + ':' + std::to_string(request.port),
          connection->id);
      nextRequestOrdinal_[connection->id] = 1;
    } else {
      stack_.closeTcp(connection->id);
    }
  }

  liveStack_.resize(liveStack_.size() - chain.size());
}

void Interpreter::runTransfers(const NetRequestAction& request,
                               net::SocketId socketId) {
  net::NetworkStack::HttpRequestInfo http;
  http.path = request.path;
  http.userAgent =
      request.userAgent.empty() ? kDefaultUserAgent : request.userAgent;
  http.post = request.post;

  const std::uint8_t transfers = std::max<std::uint8_t>(request.transfers, 1);
  for (std::uint8_t i = 0; i < transfers; ++i) {
    const auto requestBytes = static_cast<std::uint32_t>(rng_.uniform(
        std::min(request.requestBytesMin, request.requestBytesMax),
        std::max(request.requestBytesMin, request.requestBytesMax)));
    stack_.transfer(socketId, requestBytes, &http);
  }
}

void Interpreter::closePooledConnections() {
  // Sorted teardown: the pool is a hash map, but FIN packets land in the
  // shared capture, so close order must not depend on hash iteration.
  std::vector<std::pair<std::string_view, net::SocketId>> pooled(
      connectionPool_.begin(), connectionPool_.end());
  std::sort(pooled.begin(), pooled.end());
  for (const auto& [key, socketId] : pooled) stack_.closeTcp(socketId);
  connectionPool_.clear();
  nextRequestOrdinal_.clear();
}

void Interpreter::runSystemRequest(const SystemRequestAction& request) {
  // Framework-owned thread: the live stack is replaced by pure framework
  // frames for the duration of the request, so getStackTrace() from the
  // post-hook sees no app code at all.
  std::vector<LiveFrame> saved;
  saved.swap(liveStack_);
  for (const auto frame : systemThreadChain()) pushFrameworkFrame(frame);

  NetRequestAction asRequest;
  asRequest.domain = request.domain;
  asRequest.port = request.port;
  asRequest.requestBytesMin = request.requestBytesMin;
  asRequest.requestBytesMax = request.requestBytesMax;
  asRequest.transfers = 1;
  asRequest.engine = HttpEngine::UrlConnection;
  doNetRequest(asRequest);

  liveStack_ = std::move(saved);
}

}  // namespace libspector::rt
