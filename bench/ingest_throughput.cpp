// Streaming ingest throughput: datagrams/sec through the sharded router
// and end-to-end fold latency, tracked from PR 2 onward.
//
// Two axes:
//   - framing cost: encode/decode/peek of the versioned report frame
//     (crc32 over the body is the dominant term);
//   - sharding: 1 shard vs one per hardware thread, many producer threads
//     pushing framed datagrams through bounded queues.
//
// The headline comparison pushes a fixed datagram corpus through a 1-shard
// and an N-shard router from a multi-threaded producer fleet, prints
// datagrams/sec and the router's own p99 fold latency, and writes
// BENCH_ingest.json so the perf trajectory is machine-readable. The
// google-benchmark microbenchmarks after it isolate the framing layer.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "ingest/router.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kApps = 64;
constexpr std::uint64_t kFramesPerApp = 2000;

core::UdpReport benchReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(1024 + (seq % 60000))},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;
  report.stackSignatures = {
      "java.net.Socket.connect",
      "Lcom/squareup/okhttp/internal/io/RealConnection;->connectSocket()V",
      "Lcom/example/app/net/Api;->fetch()V"};
  return report;
}

/// One datagram corpus, framed once and reused by every configuration: the
/// routers are what gets measured, not the encoder.
struct Corpus {
  Corpus() {
    datagrams.reserve(kApps * kFramesPerApp);
    for (std::size_t app = 0; app < kApps; ++app) {
      const std::string sha = "benchapp" + std::to_string(app);
      for (std::uint64_t seq = 0; seq < kFramesPerApp; ++seq)
        datagrams.push_back(
            core::ReportFrame{static_cast<std::uint32_t>(app), seq,
                              benchReport(sha, seq)}
                .encode());
    }
  }
  std::vector<std::vector<std::uint8_t>> datagrams;
};

const Corpus& corpus() {
  static const Corpus kCorpus;
  return kCorpus;
}

struct IngestRunResult {
  double seconds = 0.0;
  double p99Ms = 0.0;
  std::uint64_t folded = 0;
};

/// Push the whole corpus through a router with `shards` shards from
/// `producers` threads (striped assignment), drain, and report.
IngestRunResult pushCorpus(std::size_t shards, std::size_t producers) {
  ingest::IngestConfig config;
  config.shards = shards;
  config.queueCapacity = 8192;
  ingest::ShardedIngest router(config);

  const auto& datagrams = corpus().datagrams;
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(producers);
    for (std::size_t t = 0; t < producers; ++t) {
      threads.emplace_back([&datagrams, &router, t, producers] {
        for (std::size_t i = t; i < datagrams.size(); i += producers)
          router.submitDatagram(datagrams[i]);
      });
    }
  }
  router.drain();
  IngestRunResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto metrics = router.metrics();
  result.p99Ms = metrics.latencyP99Ms;
  result.folded = metrics.framesFolded;
  return result;
}

void runHeadlineComparison() {
  const std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t producers = std::max<std::size_t>(2, threads / 2);
  const auto total = static_cast<double>(corpus().datagrams.size());

  const auto oneShard = pushCorpus(1, producers);
  const auto manyShards = pushCorpus(threads, producers);

  const double oneRate = total / oneShard.seconds;
  const double manyRate = total / manyShards.seconds;
  std::printf("=== ingest throughput: %zu apps x %llu framed datagrams ===\n",
              kApps, static_cast<unsigned long long>(kFramesPerApp));
  std::printf("producers: %zu threads, corpus: %.0f datagrams\n", producers,
              total);
  std::printf("1 shard   : %8.3f s  (%10.0f datagrams/s, fold p99 %7.3f ms)\n",
              oneShard.seconds, oneRate, oneShard.p99Ms);
  std::printf("%2zu shards : %8.3f s  (%10.0f datagrams/s, fold p99 %7.3f ms)\n",
              threads, manyShards.seconds, manyRate, manyShards.p99Ms);
  std::printf("scaling (1 -> %zu shards): %.2fx\n\n", threads,
              oneRate > 0.0 ? manyRate / oneRate : 0.0);

  if (std::FILE* json = std::fopen("BENCH_ingest.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"apps\": %zu,\n"
                 "  \"datagrams\": %.0f,\n"
                 "  \"producer_threads\": %zu,\n"
                 "  \"shards_many\": %zu,\n"
                 "  \"one_shard_seconds\": %.6f,\n"
                 "  \"one_shard_datagrams_per_sec\": %.1f,\n"
                 "  \"one_shard_fold_p99_ms\": %.6f,\n"
                 "  \"many_shard_seconds\": %.6f,\n"
                 "  \"many_shard_datagrams_per_sec\": %.1f,\n"
                 "  \"many_shard_fold_p99_ms\": %.6f,\n"
                 "  \"shard_scaling\": %.3f\n"
                 "}\n",
                 kApps, total, producers, threads, oneShard.seconds, oneRate,
                 oneShard.p99Ms, manyShards.seconds, manyRate,
                 manyShards.p99Ms, oneRate > 0.0 ? manyRate / oneRate : 0.0);
    std::fclose(json);
    std::printf("wrote BENCH_ingest.json\n\n");
  }
}

// ---------------------------------------------------------------------------
// Microbenchmarks: the framing layer in isolation.
// ---------------------------------------------------------------------------

void BM_FrameEncode(benchmark::State& state) {
  const core::ReportFrame frame{1, 7, benchReport("benchapp0", 7)};
  for (auto _ : state) benchmark::DoNotOptimize(frame.encode());
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(frame.encode().size())));
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const auto bytes = core::ReportFrame{1, 7, benchReport("benchapp0", 7)}.encode();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::ReportFrame::decode(bytes));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(bytes.size())));
}
BENCHMARK(BM_FrameDecode);

void BM_FramePeek(benchmark::State& state) {
  const auto bytes = core::ReportFrame{1, 7, benchReport("benchapp0", 7)}.encode();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::ReportFrame::peek(bytes));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(bytes.size())));
}
BENCHMARK(BM_FramePeek);

void BM_SubmitDatagram(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  ingest::IngestConfig config;
  config.shards = shards;
  config.queueCapacity = 1 << 16;
  ingest::ShardedIngest router(config);
  const auto& datagrams = corpus().datagrams;
  std::size_t i = 0;
  for (auto _ : state)
    router.submitDatagram(datagrams[i++ % datagrams.size()]);
  router.drain();
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_SubmitDatagram)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  runHeadlineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
