// Regenerates Fig. 2: data transfer size of origin-library categories per
// app category, plus the legend's total-share percentages.
//
// Paper reference: Advertisement 28.28%, Development Aid 26.34%,
// Unknown 25.3%, Game Engine 10.2%, Utility 3.36%, GUI Component 1.98%,
// Mobile Analytics 1.71%, Social Network 1.43%, Payment 0.7%,
// Digital Identity 0.39%, Map/LBS 0.19%, Dev. Framework 0.08%,
// App Market 0.03%.
#include "common/study.hpp"

#include "radar/corpus.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 2 — transfer by app category x library category",
                     options);
  const auto result = bench::runStudy(options);
  const auto totals = result.study.totals();

  std::printf("%-22s", "library category");
  std::printf("%12s %8s   (paper share)\n", "bytes", "share");
  struct PaperShare {
    const char* category;
    double share;
  };
  static constexpr PaperShare kPaper[] = {
      {"Advertisement", 28.28}, {"App Market", 0.03},
      {"Development Aid", 26.34}, {"Development Framework", 0.08},
      {"Digital Identity", 0.39}, {"GUI Component", 1.98},
      {"Game Engine", 10.2},    {"Map/LBS", 0.19},
      {"Mobile Analytics", 1.71}, {"Payment", 0.7},
      {"Social Network", 1.43}, {"Unknown", 25.3},
      {"Utility", 3.36}};
  const auto byCategory = result.study.transferByLibCategory();
  for (const auto& row : kPaper) {
    const auto it = byCategory.find(row.category);
    const double bytes =
        it == byCategory.end() ? 0.0 : static_cast<double>(it->second);
    std::printf("%-22s%12s %7.2f%%   (%.2f%%)\n", row.category,
                bench::bytesStr(bytes).c_str(),
                100.0 * bytes / static_cast<double>(totals.totalBytes),
                row.share);
  }

  std::printf("\nPer-app-category breakdown (top 5 library categories each):\n");
  for (const auto& [appCategory, libCategories] :
       result.study.transferByAppAndLibCategory()) {
    std::vector<std::pair<std::string, std::uint64_t>> rows(
        libCategories.begin(), libCategories.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("  %-22s", appCategory.c_str());
    for (std::size_t i = 0; i < rows.size() && i < 5; ++i)
      std::printf(" %s=%s", rows[i].first.c_str(),
                  bench::bytesStr(static_cast<double>(rows[i].second)).c_str());
    std::printf("\n");
  }
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
