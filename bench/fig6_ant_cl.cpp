// Regenerates Fig. 6: per-app transfer share of Advertisement & Tracker
// (AnT) libraries and of the most common libraries (CL), per Li et al.'s
// lists.
//
// Paper reference: ~10% of apps have zero AnT traffic, ~35% have *only*
// AnT traffic, 89% have some; AnT libraries receive 54.8x more than they
// send vs 24.4x for common libraries (about 2x as aggressive).
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 6 — AnT vs common-library transfer share", options);
  const auto result = bench::runStudy(options);
  const auto ant = result.study.antStats();
  const double withTraffic = static_cast<double>(ant.appsWithTraffic);

  std::printf("apps with traffic:       %zu\n", ant.appsWithTraffic);
  std::printf("AnT-free apps:           %zu (%.1f%%; paper ~10%%)\n",
              ant.noAntApps, 100.0 * static_cast<double>(ant.noAntApps) / withTraffic);
  std::printf("AnT-only apps:           %zu (%.1f%%; paper ~35%%)\n",
              ant.antOnlyApps, 100.0 * static_cast<double>(ant.antOnlyApps) / withTraffic);
  std::printf("apps with some AnT:      %zu (%.1f%%; paper ~89%%)\n",
              ant.someAntApps, 100.0 * static_cast<double>(ant.someAntApps) / withTraffic);
  std::printf("mean AnT share per app:  %.1f%%\n", 100.0 * ant.antShareMean);
  std::printf("mean CL share per app:   %.1f%%\n", 100.0 * ant.clShareMean);

  std::printf("\nflow-ratio aggressiveness (recv/sent per library):\n");
  std::printf("  AnT libraries:    %6.1f (paper 54.8)\n", ant.antMeanFlowRatio);
  std::printf("  common libraries: %6.1f (paper 24.4)\n", ant.clMeanFlowRatio);
  std::printf("  AnT/CL factor:    %6.2fx (paper 2.25x)\n",
              ant.clMeanFlowRatio > 0 ? ant.antMeanFlowRatio / ant.clMeanFlowRatio : 0.0);

  std::printf("\nAnT share distribution across apps (sorted):\n  ");
  const auto& shares = ant.antShare;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    if (shares.empty()) break;
    std::printf("p%.0f=%.3f  ", 100 * q,
                shares[static_cast<std::size_t>(q * (shares.size() - 1))]);
  }
  std::printf("\n\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
