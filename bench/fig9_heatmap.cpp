// Regenerates Fig. 9: correlation of origin-library categories (columns)
// with DNS domain categories (rows), as aggregate transfer in MB.
//
// Paper reference: there is no strict 1-to-1 category correlation —
// advertisement-library traffic also lands on CDN and business/finance
// domains (~29% of ad-library traffic goes to CDNs), analytics-library
// traffic often ends on business/finance domains, and advertisement
// domains also receive development-aid and analytics traffic.
#include "common/study.hpp"

#include "radar/corpus.hpp"
#include "vtsim/categories.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 9 — library category x domain category heatmap",
                     options);
  const auto result = bench::runStudy(options);
  const auto& heatmap = result.study.libraryDomainHeatmap();

  // Columns: library categories with any traffic, in Fig. 2 order.
  std::vector<std::string> columns;
  for (const auto& category : radar::libraryCategories())
    if (heatmap.contains(category)) columns.push_back(category);

  std::printf("%-22s", "MB");
  for (const auto& column : columns) std::printf(" %10.10s", column.c_str());
  std::printf("\n");
  for (const auto& domainCategory : vtsim::genericCategories()) {
    bool any = false;
    for (const auto& column : columns)
      if (heatmap.at(column).contains(domainCategory)) any = true;
    if (!any) continue;
    std::printf("%-22s", domainCategory.c_str());
    for (const auto& column : columns) {
      const auto& row = heatmap.at(column);
      const auto it = row.find(domainCategory);
      const double mb =
          it == row.end() ? 0.0 : static_cast<double>(it->second) / (1024.0 * 1024.0);
      std::printf(" %10.1f", mb);
    }
    std::printf("\n");
  }

  // §IV-E: the misclassification a DNS-only approach would make.
  if (heatmap.contains("Advertisement")) {
    std::uint64_t adTotal = 0, adCdn = 0;
    for (const auto& [domainCategory, bytes] : heatmap.at("Advertisement")) {
      adTotal += bytes;
      if (domainCategory == "cdn") adCdn += bytes;
    }
    std::printf("\nad-library traffic to CDN domains: %.1f%% (paper ~29%%)\n",
                adTotal ? 100.0 * static_cast<double>(adCdn) / static_cast<double>(adTotal) : 0.0);
  }
  std::printf("known-library traffic on CDN domains: %.1f%% (paper 19.3%%)\n",
              100.0 * result.study.knownLibraryCdnShare());
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
