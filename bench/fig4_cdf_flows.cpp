// Regenerates Fig. 4: CDFs of sent and received data-transfer flow sizes
// across apps, origin-libraries, and DNS domains.
//
// Paper reference: all three entity kinds receive more than they send; the
// distributions span roughly 400 B .. 1 GB on a log axis.
#include "common/study.hpp"

#include "util/stats.hpp"

using namespace libspector;

namespace {

void printCdf(const char* label, std::vector<double> values) {
  const auto cdf = util::empiricalCdf(std::move(values), 9);
  std::printf("  %-14s", label);
  for (const auto& point : cdf)
    std::printf(" %9s@%.2f", bench::bytesStr(point.value).c_str(), point.fraction);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 4 — CDF of transfer flow sizes", options);
  const auto result = bench::runStudy(options);
  using Entity = core::StudyAggregator::Entity;

  std::printf("CDF sample points (value@fraction):\n");
  printCdf("App: Sent", result.study.sentTotals(Entity::App));
  printCdf("App: Received", result.study.recvTotals(Entity::App));
  printCdf("Lib: Sent", result.study.sentTotals(Entity::Library));
  printCdf("Lib: Received", result.study.recvTotals(Entity::Library));
  printCdf("DNS: Sent", result.study.sentTotals(Entity::Domain));
  printCdf("DNS: Received", result.study.recvTotals(Entity::Domain));

  // The headline property: received stochastically dominates sent.
  const auto medianOf = [](std::vector<double> values) {
    if (values.empty()) return 0.0;
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    return values[values.size() / 2];
  };
  std::printf("\nmedian received/sent: apps %.1fx, libs %.1fx, domains %.1fx\n",
              medianOf(result.study.recvTotals(Entity::App)) /
                  std::max(1.0, medianOf(result.study.sentTotals(Entity::App))),
              medianOf(result.study.recvTotals(Entity::Library)) /
                  std::max(1.0, medianOf(result.study.sentTotals(Entity::Library))),
              medianOf(result.study.recvTotals(Entity::Domain)) /
                  std::max(1.0, medianOf(result.study.sentTotals(Entity::Domain))));
  std::printf("(paper: every entity kind receives more than it sends)\n");
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
