// Regenerates the §IV-A headline numbers.
//
// Paper reference: 30.75 GB total (29.13 GB received / 1.62 GB sent),
// 617,400 flows from 8,652 origin-libraries across 13 categories to
// 14,140 DNS domains; half the transfer involves the top 5,057 apps,
// 2,299 origin-libraries and 4,010 domains; non-Libspector UDP traffic is
// 0.52% of the total, 97% of it DNS.
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("§IV-A — study totals", options);
  const auto result = bench::runStudy(options);
  const auto totals = result.study.totals();
  const double apps = static_cast<double>(totals.appCount);

  std::printf("apps analyzed:            %zu\n", totals.appCount);
  std::printf("total transferred:        %s (received %s / sent %s)\n",
              bench::bytesStr(static_cast<double>(totals.totalBytes)).c_str(),
              bench::bytesStr(static_cast<double>(totals.recvBytes)).c_str(),
              bench::bytesStr(static_cast<double>(totals.sentBytes)).c_str());
  std::printf("flows (sockets):          %zu  (%.1f per app; paper 24.7)\n",
              totals.flowCount, static_cast<double>(totals.flowCount) / apps);
  std::printf("origin-libraries:         %zu  (%.2f per app; paper 0.35)\n",
              totals.originLibraryCount,
              static_cast<double>(totals.originLibraryCount) / apps);
  std::printf("2-level libraries:        %zu\n", totals.twoLevelLibraryCount);
  std::printf("DNS domains:              %zu  (%.2f per app; paper 0.57)\n",
              totals.domainCount, static_cast<double>(totals.domainCount) / apps);

  const auto concentration = result.study.concentration();
  std::printf("\nhalf of the transfer involves:\n");
  std::printf("  top %zu apps (%.1f%%; paper 20.2%%)\n", concentration.appsForHalf,
              100.0 * static_cast<double>(concentration.appsForHalf) / apps);
  std::printf("  top %zu origin-libraries (%.1f%%; paper 26.3%%)\n",
              concentration.librariesForHalf,
              100.0 * static_cast<double>(concentration.librariesForHalf) /
                  static_cast<double>(totals.originLibraryCount));
  std::printf("  top %zu domains (%.1f%%; paper 28.4%%)\n",
              concentration.domainsForHalf,
              100.0 * static_cast<double>(concentration.domainsForHalf) /
                  static_cast<double>(totals.domainCount));

  const auto& udp = result.study.udpStats();
  const double udpShare = udp.totalBytes
                              ? 100.0 * static_cast<double>(udp.udpBytes) /
                                    static_cast<double>(udp.totalBytes)
                              : 0.0;
  const double dnsShare = udp.udpBytes
                              ? 100.0 * static_cast<double>(udp.dnsBytes) /
                                    static_cast<double>(udp.udpBytes)
                              : 0.0;
  std::printf("\nnon-Libspector UDP: %.2f%% of capture (paper 0.52%%), %.0f%% of it DNS (paper 97%%)\n",
              udpShare, dnsShare);
  std::printf("Libspector report datagrams: %s (excluded from analysis)\n",
              bench::bytesStr(static_cast<double>(udp.reportBytes)).c_str());
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
