// Regenerates Fig. 5: data transfer flow ratios (received/sent) across
// apps, origin-libraries and DNS domains, with the red-diamond means.
//
// Paper reference: apps receive on average 81x more than they send,
// libraries 87x, while domain servers send 104x more than they receive;
// the top 10% of origin-libraries exceed 260x.
#include "common/study.hpp"

using namespace libspector;

namespace {

void printRatioSeries(const char* label,
                      const core::StudyAggregator::RatioStats& stats,
                      double paperMean) {
  if (stats.ratios.empty()) {
    std::printf("  %-8s (no data)\n", label);
    return;
  }
  const auto& r = stats.ratios;
  const auto at = [&](double q) { return r[static_cast<std::size_t>(q * (r.size() - 1))]; };
  std::printf("  %-8s mean %7.1f (paper %5.0f)  p10 %6.1f  p50 %6.1f  p90 %7.1f  p99 %8.1f  max %9.1f\n",
              label, stats.mean, paperMean, at(0.10), at(0.50), at(0.90),
              at(0.99), r.back());
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 5 — transfer flow ratios (recv/sent)", options);
  const auto result = bench::runStudy(options);
  using Entity = core::StudyAggregator::Entity;

  const auto apps = result.study.flowRatios(Entity::App);
  const auto libs = result.study.flowRatios(Entity::Library);
  const auto domains = result.study.flowRatios(Entity::Domain);
  printRatioSeries("Apps", apps, 81);
  printRatioSeries("Libs", libs, 87);
  printRatioSeries("DNS", domains, 104);

  // "the top 10% of origin-libraries received over 260 times data than sent"
  if (!libs.ratios.empty()) {
    double sum = 0.0;
    const std::size_t start = libs.ratios.size() * 9 / 10;
    for (std::size_t i = start; i < libs.ratios.size(); ++i) sum += libs.ratios[i];
    std::printf("\n  top-10%% libraries mean ratio: %.1f (paper: >260)\n",
                sum / static_cast<double>(libs.ratios.size() - start));
  }
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
