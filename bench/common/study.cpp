#include "common/study.hpp"

#include <cstdlib>

#include "orch/study.hpp"
#include "util/strings.hpp"

namespace libspector::bench {

StudyOptions optionsFromArgs(int argc, char** argv, StudyOptions defaults) {
  if (argc > 1) defaults.appCount = std::strtoul(argv[1], nullptr, 10);
  if (const char* seed = std::getenv("LIBSPECTOR_SEED"))
    defaults.seed = std::strtoull(seed, nullptr, 10);
  return defaults;
}

StudyResult runStudy(const StudyOptions& options) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  storeConfig.scenarios = options.scenarios;

  StudyResult result;
  result.generator = std::make_unique<store::AppStoreGenerator>(storeConfig);

  orch::DispatcherConfig dispatcherConfig;
  dispatcherConfig.emulator.monkey.events = options.monkeyEvents;
  dispatcherConfig.emulator.monkey.throttleMs = options.throttleMs;
  dispatcherConfig.emulator.scenario = options.scenarios;
  auto output = orch::runStudy(*result.generator, dispatcherConfig);
  result.study = std::move(output.study);
  result.wallSeconds = output.wallSeconds;
  return result;
}

std::string bytesStr(double bytes) { return util::humanBytes(bytes); }

void printHeader(const std::string& title, const StudyOptions& options) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(corpus: %zu apps, seed %llu, monkey %u events @ %u ms)\n\n",
              options.appCount,
              static_cast<unsigned long long>(options.seed),
              options.monkeyEvents, options.throttleMs);
}

}  // namespace libspector::bench
