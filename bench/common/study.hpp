// Shared harness for the table/figure regeneration benches: runs one full
// Libspector study (generate world -> dispatch emulators -> attribute ->
// aggregate) and exposes the aggregator plus formatting helpers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/analysis.hpp"
#include "store/generator.hpp"

namespace libspector::bench {

struct StudyOptions {
  std::size_t appCount = 400;
  std::uint64_t seed = 20200629;
  double methodScale = 0.15;
  std::uint32_t monkeyEvents = 1000;
  std::uint32_t throttleMs = 500;
  /// §14 workload scenarios, threaded into both the store generator and the
  /// emulator runtime (all off = the legacy corpus).
  rt::ScenarioConfig scenarios;
};

/// Parse `argv[1]` as an app count override (the only knob benches take).
[[nodiscard]] StudyOptions optionsFromArgs(int argc, char** argv,
                                           StudyOptions defaults = {});

struct StudyResult {
  core::StudyAggregator study;
  std::unique_ptr<store::AppStoreGenerator> generator;
  double wallSeconds = 0.0;
};

/// Run the full pipeline over a generated corpus.
[[nodiscard]] StudyResult runStudy(const StudyOptions& options);

/// "1.59 GB"-style formatting plus fixed-width percentage helpers.
[[nodiscard]] std::string bytesStr(double bytes);
void printHeader(const std::string& title, const StudyOptions& options);

}  // namespace libspector::bench
