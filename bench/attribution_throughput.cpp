// Offline attribution + aggregation throughput: the paper's "<5 s per app"
// stage at study scale (§II-B3), tracked from PR 1 onward.
//
// Three axes, benchmarked independently and combined:
//   - per-query cost: naive capture scan (O(packets)) vs CaptureIndex
//     (O(log packets)), per-run frame/domain memos, and the compiled
//     AttributionProgram (trie probes instead of per-prefix string scans);
//   - fold cost: row-at-a-time StudyAggregator::addApp vs the columnar
//     FlowColumns batch fold;
//   - parallelism: 1 worker vs one per hardware thread.
//
// The headline comparison runs a 200-app synthetic study end to end
// (attribute + study fold) the way the seed did — naive volume scans, no
// memos, no interning, no compiled program, row fold, serialized — and the
// way the pipeline does now (compiled + columnar + parallel), prints the
// speedup, and writes BENCH_attribution.json so the perf trajectory is
// machine-readable (scripts/check_bench_floor.py gates on it). The
// google-benchmark microbenchmarks after it isolate each axis.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <iterator>
#include <string_view>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "core/attribution_program.hpp"
#include "dex/type_signature.hpp"
#include "net/capture.hpp"
#include "orch/emulator.hpp"
#include "radar/ant.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "util/strings.hpp"
#include "vtsim/categorizer.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kStudyApps = 200;

/// The pre-emulated study every benchmark attributes: emulation runs once,
/// attribution is what gets measured.
struct StudyWorld {
  StudyWorld() {
    store::StoreConfig storeConfig;
    storeConfig.appCount = kStudyApps;
    storeConfig.seed = 20200629;
    storeConfig.methodScale = 0.15;
    generator = std::make_unique<store::AppStoreGenerator>(storeConfig);
    categorizer = std::make_unique<vtsim::DomainCategorizer>(
        vtsim::defaultVendorPanel(), [this](const std::string& domain) {
          return generator->domainTruth(domain);
        });
    for (std::size_t i = 0; i < generator->appCount(); ++i) {
      const auto job = generator->makeJob(i);
      orch::EmulatorConfig config;
      config.monkey.events = 20000;
      config.monkey.throttleMs = 20;
      config.seed = 0x11b59ec701ULL + i;
      orch::EmulatorInstance emulator(generator->farm(), nullptr, config);
      runs.push_back(emulator.run(job.apk, job.program));
    }
  }

  [[nodiscard]] core::TrafficAttributor attributor(
      core::AttributorConfig config = {}) const {
    return {corpus, *categorizer, config};
  }

  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  std::unique_ptr<store::AppStoreGenerator> generator;
  std::unique_ptr<vtsim::DomainCategorizer> categorizer;
  std::vector<core::RunArtifacts> runs;
};

const StudyWorld& world() {
  static const StudyWorld kWorld;
  return kWorld;
}

/// The seed's attributor, faithfully: every optimization this repo has
/// grown since — capture index, frame/domain memos, symbol interning, the
/// compiled program, columnar folds — switched off.
core::AttributorConfig seedConfig() {
  core::AttributorConfig config;
  config.useCaptureIndex = false;
  config.memoizeFrames = false;
  config.internSymbols = false;
  config.compileProgram = false;
  config.columnarFold = false;
  return config;
}

/// Attribute every run of the study with `threads` workers; returns the
/// total flow count (and keeps the optimizer honest).
std::size_t attributeStudy(const core::TrafficAttributor& attributor,
                           std::size_t threads) {
  std::atomic<std::size_t> nextRun{0};
  std::atomic<std::size_t> flowCount{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = nextRun.fetch_add(1);
      if (i >= world().runs.size()) return;
      const auto flows = attributor.attribute(world().runs[i]);
      flowCount.fetch_add(flows.size());
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return flowCount.load();
}

/// Attribute and row-fold the whole study serially (the seed's end-to-end
/// shape: one worker, FlowRecord rows through StudyAggregator::addApp).
std::size_t attributeAndFoldRows(const core::TrafficAttributor& attributor,
                                 core::StudyAggregator& study) {
  std::size_t flowCount = 0;
  for (const auto& run : world().runs) {
    const auto flows = attributor.attribute(run);
    flowCount += flows.size();
    study.addApp(run, flows);
  }
  return flowCount;
}

/// Attribute (columnar) with `threads` workers and fold every batch through
/// StudyAggregator::addAppColumns — the pipeline's end-to-end shape. The
/// fold is serialized behind a mutex exactly like the accumulator's.
std::size_t attributeAndFoldColumns(const core::TrafficAttributor& attributor,
                                    std::size_t threads,
                                    core::StudyAggregator& study) {
  std::atomic<std::size_t> nextRun{0};
  std::atomic<std::size_t> flowCount{0};
  std::mutex foldMutex;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = nextRun.fetch_add(1);
      if (i >= world().runs.size()) return;
      const core::FlowColumns columns =
          attributor.attributeColumns(world().runs[i]);
      flowCount.fetch_add(columns.size());
      const std::scoped_lock lock(foldMutex);
      study.addAppColumns(world().runs[i], columns);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return flowCount.load();
}

double secondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The acceptance-criterion comparison; also writes BENCH_attribution.json.
void runHeadlineComparison() {
  const std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::size_t packets = 0;
  for (const auto& run : world().runs) packets += run.capture.size();

  const auto naive = world().attributor(seedConfig());
  const auto optimized = world().attributor();

  // Attribution-only axes (the PR-1 comparison, kept for trajectory).
  std::size_t flows = 0;
  const double naiveSerialS =
      secondsOf([&] { flows = attributeStudy(naive, 1); });
  const double indexedSerialS =
      secondsOf([&] { attributeStudy(optimized, 1); });
  const double indexedParallelS =
      secondsOf([&] { attributeStudy(optimized, threads); });

  // End-to-end: attribution plus the study fold, seed shape vs pipeline
  // shape. This is the headline the perf floor gates on.
  double seedFoldS = 0.0;
  {
    core::StudyAggregator study;
    seedFoldS = secondsOf([&] { attributeAndFoldRows(naive, study); });
    benchmark::DoNotOptimize(study.totals());
  }
  double columnarSerialS = 0.0;
  {
    core::StudyAggregator study;
    columnarSerialS =
        secondsOf([&] { attributeAndFoldColumns(optimized, 1, study); });
    benchmark::DoNotOptimize(study.totals());
  }
  double columnarParallelS = 0.0;
  {
    core::StudyAggregator study;
    columnarParallelS =
        secondsOf([&] { attributeAndFoldColumns(optimized, threads, study); });
    benchmark::DoNotOptimize(study.totals());
  }

  const auto speedupOver = [](double seed, double now) {
    return now > 0.0 ? seed / now : 0.0;
  };
  const double speedupIndexedParallel =
      speedupOver(naiveSerialS, indexedParallelS);
  const double speedupColumnarSerial = speedupOver(seedFoldS, columnarSerialS);
  const double speedupColumnarParallel =
      speedupOver(seedFoldS, columnarParallelS);

  std::printf("=== attribution throughput: %zu-app study ===\n", kStudyApps);
  std::printf("capture packets: %zu, flows attributed: %zu\n", packets, flows);
  std::printf("--- attribution only ---\n");
  std::printf("seed  (naive scans, no memo/intern/program, serialized): %8.3f s  (%.1f apps/s)\n",
              naiveSerialS, static_cast<double>(kStudyApps) / naiveSerialS);
  std::printf("index (capture index + memos + program,     serialized): %8.3f s  (%.1f apps/s)\n",
              indexedSerialS, static_cast<double>(kStudyApps) / indexedSerialS);
  std::printf("index (capture index + memos + program, %2zu-way parallel): %6.3f s  (%.1f apps/s)\n",
              threads, indexedParallelS,
              static_cast<double>(kStudyApps) / indexedParallelS);
  std::printf("--- attribution + study fold (headline) ---\n");
  std::printf("seed  (naive attribute + row fold,          serialized): %8.3f s  (%.1f apps/s)\n",
              seedFoldS, static_cast<double>(kStudyApps) / seedFoldS);
  std::printf("this  (compiled attribute + columnar fold,  serialized): %8.3f s  (%.1f apps/s)\n",
              columnarSerialS,
              static_cast<double>(kStudyApps) / columnarSerialS);
  std::printf("this  (compiled attribute + columnar fold, %2zu-way parallel): %.3f s  (%.1f apps/s)\n",
              threads, columnarParallelS,
              static_cast<double>(kStudyApps) / columnarParallelS);
  std::printf("speedup (seed -> indexed parallel, attribution only): %.1fx\n",
              speedupIndexedParallel);
  std::printf("speedup (seed -> columnar serialized, end to end)   : %.1fx\n",
              speedupColumnarSerial);
  std::printf("speedup (seed -> columnar parallel,   end to end)   : %.1fx\n\n",
              speedupColumnarParallel);

  if (std::FILE* json = std::fopen("BENCH_attribution.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"study_apps\": %zu,\n"
                 "  \"capture_packets\": %zu,\n"
                 "  \"flows\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"naive_serialized_seconds\": %.6f,\n"
                 "  \"indexed_serialized_seconds\": %.6f,\n"
                 "  \"indexed_parallel_seconds\": %.6f,\n"
                 "  \"seed_fold_serialized_seconds\": %.6f,\n"
                 "  \"columnar_serialized_seconds\": %.6f,\n"
                 "  \"columnar_parallel_seconds\": %.6f,\n"
                 "  \"speedup_indexed_serialized\": %.3f,\n"
                 "  \"speedup_indexed_parallel\": %.3f,\n"
                 "  \"speedup_columnar_serialized\": %.3f,\n"
                 "  \"speedup_columnar_parallel\": %.3f\n"
                 "}\n",
                 kStudyApps, packets, flows, threads, naiveSerialS,
                 indexedSerialS, indexedParallelS, seedFoldS, columnarSerialS,
                 columnarParallelS, speedupOver(naiveSerialS, indexedSerialS),
                 speedupIndexedParallel, speedupColumnarSerial,
                 speedupColumnarParallel);
    std::fclose(json);
    std::printf("wrote BENCH_attribution.json\n\n");
  }
}

// ---------------------------------------------------------------------------
// Microbenchmarks: each axis in isolation.
// ---------------------------------------------------------------------------

const core::RunArtifacts& largestRun() {
  static const core::RunArtifacts& kRun = []() -> const core::RunArtifacts& {
    const core::RunArtifacts* largest = &world().runs.front();
    for (const auto& run : world().runs) {
      if (run.capture.size() > largest->capture.size()) largest = &run;
    }
    return *largest;
  }();
  return kRun;
}

void BM_StreamVolume_NaiveScan(benchmark::State& state) {
  const auto& run = largestRun();
  const auto& reports = run.reports;
  if (reports.empty()) {
    state.SkipWithError("largest run produced no reports");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& report = reports[i++ % reports.size()];
    benchmark::DoNotOptimize(run.capture.streamVolume(
        report.socketPair, 0, report.timestampMs + 10'000));
  }
  state.SetLabel("packets=" + std::to_string(run.capture.size()));
}
BENCHMARK(BM_StreamVolume_NaiveScan);

void BM_StreamVolume_Indexed(benchmark::State& state) {
  const auto& run = largestRun();
  const net::CaptureIndex index(run.capture);
  const auto& reports = run.reports;
  if (reports.empty()) {
    state.SkipWithError("largest run produced no reports");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& report = reports[i++ % reports.size()];
    benchmark::DoNotOptimize(index.streamVolume(
        report.socketPair, 0, report.timestampMs + 10'000));
  }
  state.SetLabel("packets=" + std::to_string(run.capture.size()));
}
BENCHMARK(BM_StreamVolume_Indexed);

void BM_CaptureIndex_Build(benchmark::State& state) {
  const auto& run = largestRun();
  for (auto _ : state) {
    const net::CaptureIndex index(run.capture);
    benchmark::DoNotOptimize(index.connectionCount());
  }
}
BENCHMARK(BM_CaptureIndex_Build);

void BM_AttributeApp_Seed(benchmark::State& state) {
  const auto attributor = world().attributor(seedConfig());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attributor.attribute(world().runs[i++ % world().runs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AttributeApp_Seed);

void BM_AttributeApp_Indexed(benchmark::State& state) {
  const auto attributor = world().attributor();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attributor.attribute(world().runs[i++ % world().runs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AttributeApp_Indexed);

// Sample lookups for the matcher microbenches: hits at several depths plus
// adversarial near-prefixes and misses.
constexpr std::string_view kLookupPackages[] = {
    "com.google.android.gms.ads.internal",
    "com.unity3d.ads.android.cache",
    "com.facebook.ads.internal.view",
    "com.appsflyer.internal",
    "org.fooz.bar.baz",
    "com.examplez.widget",
    "a.b",
    "com.foo.bar.baz.qux.deep.deeper.deepest",
};

constexpr std::string_view kFrameSignatures[] = {
    "Lcom/android/okhttp/internal/http/HttpEngine;->readResponse()V",
    "Ljava/net/URL;->openConnection()Ljava/net/URLConnection;",
    "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/String;)V",
    "Lcom/facebook/ads/internal/view/e;->onDraw(Landroid/graphics/Canvas;)V",
    "Lorg/apache/http/impl/client/DefaultHttpClient;->execute()V",
};

const core::AttributionProgram& program() {
  static const core::AttributionProgram kProgram(
      world().corpus, core::builtinFramePrefixes(), radar::antLibraries(),
      radar::commonLibraries());
  return kProgram;
}

void BM_PrefixMatch_Reference(benchmark::State& state) {
  const auto& corpus = world().corpus;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string_view package =
        kLookupPackages[i++ % std::size(kLookupPackages)];
    benchmark::DoNotOptimize(corpus.matchCategory(package));
    benchmark::DoNotOptimize(radar::antLibraries().matches(package));
    benchmark::DoNotOptimize(radar::commonLibraries().matches(package));
  }
}
BENCHMARK(BM_PrefixMatch_Reference);

void BM_PrefixMatch_Compiled(benchmark::State& state) {
  const auto& compiled = program();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string_view package =
        kLookupPackages[i++ % std::size(kLookupPackages)];
    const auto hit = compiled.lookupPackage(package);
    benchmark::DoNotOptimize(compiled.categoryOf(hit));
    benchmark::DoNotOptimize(hit.ant);
    benchmark::DoNotOptimize(hit.common);
  }
}
BENCHMARK(BM_PrefixMatch_Compiled);

void BM_BuiltinFrame_Reference(benchmark::State& state) {
  const auto prefixes = core::builtinFramePrefixes();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string_view signature =
        kFrameSignatures[i++ % std::size(kFrameSignatures)];
    const auto parsed = dex::parseSignatureView(signature);
    bool builtin = false;
    if (parsed.has_value()) {
      for (const std::string_view prefix : prefixes) {
        if (util::isHierarchicalPrefixOfSlashedFrame(
                prefix, parsed->slashedClass, parsed->methodName)) {
          builtin = true;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(builtin);
  }
}
BENCHMARK(BM_BuiltinFrame_Reference);

void BM_BuiltinFrame_Compiled(benchmark::State& state) {
  const auto& compiled = program();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string_view signature =
        kFrameSignatures[i++ % std::size(kFrameSignatures)];
    benchmark::DoNotOptimize(compiled.isBuiltinFrame(signature));
  }
}
BENCHMARK(BM_BuiltinFrame_Compiled);

/// Pre-attributed study for the fold-only microbenches. The attributor
/// outlives the flows/columns (their Symbols point into its pool).
struct FoldWorld {
  FoldWorld() : attributor(world().attributor()) {
    for (const auto& run : world().runs) {
      rows.push_back(attributor.attribute(run));
      columns.push_back(attributor.attributeColumns(run));
    }
  }
  core::TrafficAttributor attributor;
  std::vector<std::vector<core::FlowRecord>> rows;
  std::vector<core::FlowColumns> columns;
};

const FoldWorld& foldWorld() {
  static const FoldWorld kFold;
  return kFold;
}

void BM_StudyFold_Rows(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyAggregator study;
    for (std::size_t i = 0; i < world().runs.size(); ++i)
      study.addApp(world().runs[i], foldWorld().rows[i]);
    benchmark::DoNotOptimize(study.totals());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(kStudyApps)));
}
BENCHMARK(BM_StudyFold_Rows)->Unit(benchmark::kMillisecond);

void BM_StudyFold_Columnar(benchmark::State& state) {
  for (auto _ : state) {
    core::StudyAggregator study;
    for (std::size_t i = 0; i < world().runs.size(); ++i)
      study.addAppColumns(world().runs[i], foldWorld().columns[i]);
    benchmark::DoNotOptimize(study.totals());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(kStudyApps)));
}
BENCHMARK(BM_StudyFold_Columnar)->Unit(benchmark::kMillisecond);

void BM_StudyAttribution(benchmark::State& state) {
  const auto attributor = world().attributor();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(attributeStudy(attributor, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(kStudyApps)));
}
BENCHMARK(BM_StudyAttribution)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  runHeadlineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
