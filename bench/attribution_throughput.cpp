// Offline attribution throughput: the paper's "<5 s per app" stage at
// study scale (§II-B3), tracked from PR 1 onward.
//
// Two axes, benchmarked independently and combined:
//   - per-query cost: naive capture scan (O(packets)) vs CaptureIndex
//     (O(log packets)) plus the per-run frame memos;
//   - parallelism: 1 worker vs one per hardware thread (the dispatcher used
//     to serialize attribution behind its sink mutex, collapsing the fleet
//     to one core exactly where the work is heaviest).
//
// The headline comparison attributes a 200-app synthetic study the way the
// seed did (naive + serialized) and the way the pipeline does now
// (indexed + parallel), prints the speedup, and writes BENCH_attribution.json
// so the perf trajectory is machine-readable. The google-benchmark
// microbenchmarks after it isolate each axis.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/attribution.hpp"
#include "net/capture.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kStudyApps = 200;

/// The pre-emulated study every benchmark attributes: emulation runs once,
/// attribution is what gets measured.
struct StudyWorld {
  StudyWorld() {
    store::StoreConfig storeConfig;
    storeConfig.appCount = kStudyApps;
    storeConfig.seed = 20200629;
    storeConfig.methodScale = 0.15;
    generator = std::make_unique<store::AppStoreGenerator>(storeConfig);
    categorizer = std::make_unique<vtsim::DomainCategorizer>(
        vtsim::defaultVendorPanel(), [this](const std::string& domain) {
          return generator->domainTruth(domain);
        });
    for (std::size_t i = 0; i < generator->appCount(); ++i) {
      const auto job = generator->makeJob(i);
      orch::EmulatorConfig config;
      config.monkey.events = 20000;
      config.monkey.throttleMs = 20;
      config.seed = 0x11b59ec701ULL + i;
      orch::EmulatorInstance emulator(generator->farm(), nullptr, config);
      runs.push_back(emulator.run(job.apk, job.program));
    }
  }

  [[nodiscard]] core::TrafficAttributor attributor(
      core::AttributorConfig config = {}) const {
    return {corpus, *categorizer, config};
  }

  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  std::unique_ptr<store::AppStoreGenerator> generator;
  std::unique_ptr<vtsim::DomainCategorizer> categorizer;
  std::vector<core::RunArtifacts> runs;
};

const StudyWorld& world() {
  static const StudyWorld kWorld;
  return kWorld;
}

core::AttributorConfig seedConfig() {
  core::AttributorConfig config;
  config.useCaptureIndex = false;
  config.memoizeFrames = false;
  return config;
}

/// Attribute every run of the study with `threads` workers; returns the
/// total flow count (and keeps the optimizer honest).
std::size_t attributeStudy(const core::TrafficAttributor& attributor,
                           std::size_t threads) {
  std::atomic<std::size_t> nextRun{0};
  std::atomic<std::size_t> flowCount{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = nextRun.fetch_add(1);
      if (i >= world().runs.size()) return;
      const auto flows = attributor.attribute(world().runs[i]);
      flowCount.fetch_add(flows.size());
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }
  return flowCount.load();
}

double secondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The acceptance-criterion comparison; also writes BENCH_attribution.json.
void runHeadlineComparison() {
  const std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::size_t packets = 0;
  for (const auto& run : world().runs) packets += run.capture.size();

  const auto naive = world().attributor(seedConfig());
  const auto indexed = world().attributor();

  std::size_t flows = 0;
  const double naiveSerialS =
      secondsOf([&] { flows = attributeStudy(naive, 1); });
  const double indexedSerialS =
      secondsOf([&] { attributeStudy(indexed, 1); });
  const double indexedParallelS =
      secondsOf([&] { attributeStudy(indexed, threads); });

  const double speedup = indexedParallelS > 0.0 ? naiveSerialS / indexedParallelS
                                                : 0.0;
  std::printf("=== attribution throughput: %zu-app study ===\n", kStudyApps);
  std::printf("capture packets: %zu, flows attributed: %zu\n", packets, flows);
  std::printf("seed  (naive volume scan, no memo, serialized): %8.3f s  (%.1f apps/s)\n",
              naiveSerialS, static_cast<double>(kStudyApps) / naiveSerialS);
  std::printf("index (capture index + memo,       serialized): %8.3f s  (%.1f apps/s)\n",
              indexedSerialS, static_cast<double>(kStudyApps) / indexedSerialS);
  std::printf("this  (capture index + memo, %2zu-way parallel) : %8.3f s  (%.1f apps/s)\n",
              threads, indexedParallelS,
              static_cast<double>(kStudyApps) / indexedParallelS);
  std::printf("speedup (seed serialized -> indexed parallel): %.1fx\n\n", speedup);

  if (std::FILE* json = std::fopen("BENCH_attribution.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"study_apps\": %zu,\n"
                 "  \"capture_packets\": %zu,\n"
                 "  \"flows\": %zu,\n"
                 "  \"threads\": %zu,\n"
                 "  \"naive_serialized_seconds\": %.6f,\n"
                 "  \"indexed_serialized_seconds\": %.6f,\n"
                 "  \"indexed_parallel_seconds\": %.6f,\n"
                 "  \"speedup_indexed_serialized\": %.3f,\n"
                 "  \"speedup_indexed_parallel\": %.3f\n"
                 "}\n",
                 kStudyApps, packets, flows, threads, naiveSerialS,
                 indexedSerialS, indexedParallelS,
                 indexedSerialS > 0.0 ? naiveSerialS / indexedSerialS : 0.0,
                 speedup);
    std::fclose(json);
    std::printf("wrote BENCH_attribution.json\n\n");
  }
}

// ---------------------------------------------------------------------------
// Microbenchmarks: each axis in isolation.
// ---------------------------------------------------------------------------

const core::RunArtifacts& largestRun() {
  static const core::RunArtifacts& kRun = []() -> const core::RunArtifacts& {
    const core::RunArtifacts* largest = &world().runs.front();
    for (const auto& run : world().runs) {
      if (run.capture.size() > largest->capture.size()) largest = &run;
    }
    return *largest;
  }();
  return kRun;
}

void BM_StreamVolume_NaiveScan(benchmark::State& state) {
  const auto& run = largestRun();
  const auto& reports = run.reports;
  if (reports.empty()) {
    state.SkipWithError("largest run produced no reports");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& report = reports[i++ % reports.size()];
    benchmark::DoNotOptimize(run.capture.streamVolume(
        report.socketPair, 0, report.timestampMs + 10'000));
  }
  state.SetLabel("packets=" + std::to_string(run.capture.size()));
}
BENCHMARK(BM_StreamVolume_NaiveScan);

void BM_StreamVolume_Indexed(benchmark::State& state) {
  const auto& run = largestRun();
  const net::CaptureIndex index(run.capture);
  const auto& reports = run.reports;
  if (reports.empty()) {
    state.SkipWithError("largest run produced no reports");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& report = reports[i++ % reports.size()];
    benchmark::DoNotOptimize(index.streamVolume(
        report.socketPair, 0, report.timestampMs + 10'000));
  }
  state.SetLabel("packets=" + std::to_string(run.capture.size()));
}
BENCHMARK(BM_StreamVolume_Indexed);

void BM_CaptureIndex_Build(benchmark::State& state) {
  const auto& run = largestRun();
  for (auto _ : state) {
    const net::CaptureIndex index(run.capture);
    benchmark::DoNotOptimize(index.connectionCount());
  }
}
BENCHMARK(BM_CaptureIndex_Build);

void BM_AttributeApp_Seed(benchmark::State& state) {
  const auto attributor = world().attributor(seedConfig());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attributor.attribute(world().runs[i++ % world().runs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AttributeApp_Seed);

void BM_AttributeApp_Indexed(benchmark::State& state) {
  const auto attributor = world().attributor();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attributor.attribute(world().runs[i++ % world().runs.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AttributeApp_Indexed);

void BM_StudyAttribution(benchmark::State& state) {
  const auto attributor = world().attributor();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(attributeStudy(attributor, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(kStudyApps)));
}
BENCHMARK(BM_StudyAttribution)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  runHeadlineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
