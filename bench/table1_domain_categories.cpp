// Regenerates Table I: the tokenization of VirusTotal domain categories
// into 17 generic categories, with the number of observed domains per
// generic category for the study corpus.
//
// Paper reference (counts at 25,000 apps / 14,140 domains): unknown 4,064;
// business_and_finance 3,394; info_tech 1,525; advertisements 1,336;
// lifestyle 558; communication 472; entertainment 481; analytics 419;
// education 413; news 415; internet_services 374; games 288; adult 206;
// cdn 77; social_networks 55; health 40; malicious 23.
#include "common/study.hpp"

#include "vtsim/categories.hpp"
#include "vtsim/categorizer.hpp"

#include <string>

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Table I — tokenization of domain categories", options);
  const auto result = bench::runStudy(options);

  // Re-categorize every domain the study's flows touched, as §III-F does.
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&](const std::string& domain) {
        return result.generator->domainTruth(domain);
      });
  for (const auto& domain : result.generator->farm().allDomains())
    categorizer.categorize(domain);

  const auto counts = categorizer.categoryCounts();
  std::size_t total = 0;
  std::printf("%-24s %8s   token patterns\n", "generic category", "count");
  for (const auto& row : vtsim::categoryPatternTable()) {
    const auto it = counts.find(std::string(row.category));
    const std::size_t count = it == counts.end() ? 0 : it->second;
    total += count;
    std::string patterns;
    for (std::size_t i = 0; i < row.tokens.size(); ++i) {
      if (i) patterns += ",";
      patterns += row.tokens[i];
    }
    if (row.category == vtsim::kUnknownDomainCategory)
      patterns = "(all remaining)";
    std::printf("%-24s %8zu   %.70s\n", std::string(row.category).c_str(),
                count, patterns.c_str());
  }
  std::printf("%-24s %8zu\n", "Total", total);
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
