// Regenerates the §IV-D user-cost estimates from the measured study, using
// the paper's exact models (Google Fi $10/GB; Vallina et al.'s ad-library
// energy parameters).
//
// Paper reference: Advertisement traffic costs $1.17/hour and 18.7% of a
// typical battery; Mobile Analytics $0.17/hour; Social Network + Digital
// Identity $0.14/hour; Game Engine $3.02/hour.
#include "common/study.hpp"

#include "core/cost.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("§IV-D — estimated user cost per library category",
                     options);
  const auto result = bench::runStudy(options);

  const double runMinutes = 8.0;
  const core::CostModel model(core::DataPlanModel{}, core::EnergyModel{},
                              runMinutes);
  const core::EnergyModel& energy = model.energy();
  std::printf("energy model: %.2f V battery, %.3f W ad drain, %.0f B/s -> %.2e J/B\n\n",
              energy.batteryVoltage(), energy.adActivePowerWatts(),
              energy.adThroughputBytesPerSec(), energy.joulesPerByte());

  struct Row {
    const char* label;
    std::vector<const char*> categories;
    double paperUsd;
  };
  const std::vector<Row> rows = {
      {"Advertisement", {"Advertisement"}, 1.17},
      {"Mobile Analytics", {"Mobile Analytics"}, 0.17},
      {"Social + Identity", {"Social Network", "Digital Identity"}, 0.14},
      {"Game Engine", {"Game Engine"}, 3.02},
  };

  std::printf("%-20s %14s %10s %12s %10s\n", "category", "bytes/run",
              "$/hour", "paper $/h", "battery");
  for (const auto& row : rows) {
    double bytesPerRun = 0.0;
    for (const char* category : row.categories)
      bytesPerRun += result.study.meanBytesPerRun(category);
    const auto estimate = model.estimate(bytesPerRun);
    std::printf("%-20s %14s %10.3f %12.2f %9.2f%%\n", row.label,
                bench::bytesStr(bytesPerRun).c_str(), estimate.usdPerHour,
                row.paperUsd, 100.0 * estimate.batteryFraction);
  }

  // The paper's own worked example, for reference.
  const auto paperExample = model.estimate(15.6 * 1024 * 1024);
  std::printf("\npaper worked example (15.6 MB ads/run): $%.2f/h, %.0f J, %.1f%% battery"
              " (paper: $1.17, 7794 J, 18.7%%)\n",
              paperExample.usdPerHour, paperExample.energyJoules,
              100.0 * paperExample.batteryFraction);
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
