// §IV-E application: what enforcement buys. Runs the study population
// twice — unpoliced, then with a BorderPatrol-style blacklist of the whole
// AnT list — and reports the traffic and §IV-D user-cost reduction.
//
// Paper tie-in: AnT-origin traffic is ~30% of the total (Fig. 2/6), and
// the ad share alone costs users $1.17/hour and 18.7% battery (§IV-D), so
// per-library enforcement — which needs exactly the attribution Libspector
// provides — recovers most of that without touching app functionality.
#include "common/study.hpp"

#include <optional>

#include "core/attribution.hpp"
#include "core/cost.hpp"
#include "hook/xposed.hpp"
#include "monkey/monkey.hpp"
#include "orch/emulator.hpp"
#include "policy/module.hpp"
#include "radar/corpus.hpp"
#include "rt/tracer.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

namespace {

struct RunTotals {
  std::uint64_t bytes = 0;
  std::size_t sockets = 0;
  std::size_t blocked = 0;
};

RunTotals runPopulation(const store::AppStoreGenerator& generator,
                        const policy::PolicyEngine* engine,
                        std::uint32_t events) {
  RunTotals totals;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    util::SimClock clock;
    util::Rng rng(9000 + i);
    net::NetworkStack stack(generator.farm(), clock, rng.fork(1));
    rt::UniqueMethodTracer tracer;
    rt::Interpreter runtime(job.program, stack, tracer, clock, rng.fork(2));
    hook::XposedFramework xposed;
    if (engine != nullptr)
      xposed.installModule(std::make_shared<policy::PolicyModule>(*engine));
    xposed.attachToApp(runtime, job.apk);

    runtime.start();
    monkey::MonkeyConfig monkeyConfig;
    monkeyConfig.events = events;
    monkey::exercise(runtime, clock, monkeyConfig);

    for (const auto& pkt : stack.capture().packets())
      totals.bytes += pkt.payloadBytes;
    totals.sockets += runtime.socketsCreated();
    totals.blocked += runtime.connectsBlocked();
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.appCount = std::min<std::size_t>(options.appCount, 200);
  bench::printHeader("§IV-E application — AnT blacklist enforcement", options);

  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);

  const RunTotals unpoliced = runPopulation(generator, nullptr, options.monkeyEvents);

  policy::PolicyEngine engine;
  engine.blockAntLibraries();
  const RunTotals policed = runPopulation(generator, &engine, options.monkeyEvents);

  std::printf("%-22s %14s %10s %10s\n", "population run", "payload bytes",
              "sockets", "vetoed");
  std::printf("%-22s %14s %10zu %10zu\n", "unpoliced",
              bench::bytesStr(static_cast<double>(unpoliced.bytes)).c_str(),
              unpoliced.sockets, unpoliced.blocked);
  std::printf("%-22s %14s %10zu %10zu\n", "AnT blacklist",
              bench::bytesStr(static_cast<double>(policed.bytes)).c_str(),
              policed.sockets, policed.blocked);

  const double saved = static_cast<double>(unpoliced.bytes) -
                       static_cast<double>(policed.bytes);
  const double savedShare = 100.0 * saved / static_cast<double>(unpoliced.bytes);
  std::printf("\ntraffic removed: %s (%.1f%%; Fig. 2 puts AnT origins near 30%%)\n",
              bench::bytesStr(saved).c_str(), savedShare);

  const core::CostModel cost(core::DataPlanModel{}, core::EnergyModel{}, 8.0);
  const auto estimate =
      cost.estimate(saved / static_cast<double>(generator.appCount()));
  std::printf("per-device §IV-D savings: $%.2f/hour, %.1f%% battery\n",
              estimate.usdPerHour, 100.0 * estimate.batteryFraction);
  return 0;
}
