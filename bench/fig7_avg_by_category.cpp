// Regenerates Fig. 7: average data transfer per origin-library category
// (left) and per DNS domain category (right).
//
// Paper reference: Mobile Analytics (35.6 MB), Game Engine (27.91 MB) and
// Advertisement (12.66 MB) lead per library; per domain, CDN (46.27 MB)
// receives almost 11x more than advertisements (4.32 MB), with social
// networks third at 3.42 MB.
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 7 — average transfer per library / domain category",
                     options);
  const auto result = bench::runStudy(options);

  std::printf("Average bytes per origin-library, by library category:\n");
  std::vector<std::pair<std::string, double>> perLibrary;
  for (const auto& [category, avg] : result.study.avgBytesPerLibraryByCategory())
    perLibrary.emplace_back(category, avg);
  std::sort(perLibrary.begin(), perLibrary.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [category, avg] : perLibrary)
    std::printf("  %-24s %12s\n", category.c_str(), bench::bytesStr(avg).c_str());

  std::printf("\nAverage bytes per domain, by DNS domain category:\n");
  std::vector<std::pair<std::string, double>> perDomain;
  for (const auto& [category, avg] : result.study.avgBytesPerDomainByCategory())
    perDomain.emplace_back(category, avg);
  std::sort(perDomain.begin(), perDomain.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [category, avg] : perDomain)
    std::printf("  %-24s %12s\n", category.c_str(), bench::bytesStr(avg).c_str());

  const auto byDomainCategory = result.study.avgBytesPerDomainByCategory();
  const auto cdnIt = byDomainCategory.find("cdn");
  const auto adsIt = byDomainCategory.find("advertisements");
  if (cdnIt != byDomainCategory.end() && adsIt != byDomainCategory.end() &&
      adsIt->second > 0)
    std::printf("\nCDN/ads per-domain factor: %.1fx (paper ~10.7x)\n",
                cdnIt->second / adsIt->second);
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
