// Regenerates the §III-B pre-study: exercising a subset of apps with 10,
// 100, 500, 1,000, 5,000 and 10,000 UI input events and measuring the
// number of methods invoked.
//
// Paper reference: "exercising an app beyond 1,000 UI input events did not
// provide any significant benefits over the number of methods called" —
// the curve saturates near 1,000 events (coupon-collector over UI
// handlers, plus startup AnT activity covering the early plateau).
#include "common/study.hpp"

#include "core/monitor.hpp"
#include "orch/emulator.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.appCount = std::min<std::size_t>(options.appCount, 100);  // paper: 100 apps
  bench::printHeader("§III-B — monkey event sweep (methods called)", options);

  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);

  std::printf("%8s %16s %12s %14s\n", "events", "methods/app", "coverage",
              "sockets/app");
  double previousMethods = 0.0;
  for (const std::uint32_t events : {10u, 100u, 500u, 1000u, 5000u, 10000u}) {
    double methodSum = 0.0;
    double coverageSum = 0.0;
    double socketSum = 0.0;
    for (std::size_t i = 0; i < generator.appCount(); ++i) {
      const auto job = generator.makeJob(i);
      orch::EmulatorConfig config;
      config.monkey.events = events;
      // Throttle compressed so even 10,000 events fit the 8-minute wall:
      // the sweep isolates the effect of event count, as in the paper's
      // pre-study.
      config.monkey.throttleMs = 20;
      config.seed = options.seed + i;
      orch::EmulatorInstance emulator(generator.farm(), nullptr, config);
      const auto artifacts = emulator.run(job.apk, job.program);
      methodSum += static_cast<double>(artifacts.coverage.coveredMethods);
      coverageSum += artifacts.coverage.ratio();
      socketSum += static_cast<double>(artifacts.reports.size());
    }
    const double apps = static_cast<double>(generator.appCount());
    const double methods = methodSum / apps;
    const double gain =
        previousMethods > 0 ? 100.0 * (methods - previousMethods) / previousMethods
                            : 0.0;
    std::printf("%8u %16.0f %11.2f%% %14.1f", events, methods,
                100.0 * coverageSum / apps, socketSum / apps);
    if (previousMethods > 0) std::printf("   (+%.1f%% methods)", gain);
    std::printf("\n");
    previousMethods = methods;
  }
  std::printf("\n(diminishing returns beyond 1,000 events, as in the paper)\n");
  return 0;
}
