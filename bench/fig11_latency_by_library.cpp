// Fig. 11 (repro extension, §14): per-library network latency from the
// capture RTT axis, over a scenario-enabled corpus (keep-alive reuse +
// background sync).
//
// The paper's byte axis says which SDKs are *chatty*; the RTT axis says
// which SDKs' endpoints are *slow* — the gap between the first packet a
// flow's window sent and the first one it got back, folded per
// origin-library. Background-sync pollers contribute flows with no UI
// cause at all, so the ranking covers traffic invisible to a
// foreground-only monitor. The report doubles as enforcement input: the
// tail of the binary installs one PolicyEngine rate-limit rule per
// library above the threshold.
#include "common/study.hpp"
#include "policy/latency.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.scenarios.keepAliveReuse = true;
  options.scenarios.backgroundSync = true;
  bench::printHeader("Fig. 11 — per-library latency (capture RTT axis)",
                     options);
  const auto result = bench::runStudy(options);

  policy::LatencyReportOptions reportOptions;
  reportOptions.topN = 25;
  reportOptions.minFlows = 2;
  const auto report = policy::buildLatencyReport(result.study, reportOptions);

  std::printf("Measured flows: %llu, flow-weighted mean RTT %.3f ms\n\n",
              static_cast<unsigned long long>(report.measuredFlows),
              report.meanRttMs);
  std::printf("%-44s %-18s %8s %12s\n", "library", "category", "flows",
              "mean RTT");
  for (const auto& entry : report.entries)
    std::printf("%-44s %-18s %8llu %9.3f ms\n", entry.library.c_str(),
                entry.category.c_str(),
                static_cast<unsigned long long>(entry.flows), entry.meanRttMs);

  const double thresholdMs = 2.0 * report.meanRttMs;
  policy::PolicyEngine engine;
  const std::size_t rules =
      policy::rateLimitSlowLibraries(engine, report, thresholdMs,
                                     /*maxConnects=*/8, /*windowMs=*/60'000);
  std::printf(
      "\nEnforcement: %zu rate-limit rules installed for libraries with "
      "mean RTT >= %.3f ms (2x study mean)\n",
      rules, thresholdMs);

  std::printf("\nCSV:\n%s", policy::writeLatencyCsv(report).c_str());
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
