// Ablation: the paper's ART modification (record only unique methods)
// versus the stock Android Profiler behaviour (bounded buffer recording
// every call, "filled within seconds of app initialization").
//
// For each generated app we run the same schedule under both tracers and
// compare how many unique app methods the resulting trace file recovers —
// i.e., the coverage measurement Libspector would have reported.
#include "common/study.hpp"

#include <unordered_set>

#include "core/monitor.hpp"
#include "monkey/monkey.hpp"
#include "rt/interpreter.hpp"
#include "rt/tracer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.appCount = std::min<std::size_t>(options.appCount, 80);
  bench::printHeader("Ablation — unique-method tracer vs stock ring buffer",
                     options);

  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);

  // The stock profiler's user-specified buffer, sized like the default
  // 8 MB trace buffer would be for entry records.
  constexpr std::size_t kStockBufferEntries = 20000;

  std::printf("%12s %18s %18s %12s\n", "buffer", "unique methods",
              "dropped entries", "coverage");
  for (const bool useUnique : {false, true}) {
    double uniqueSum = 0.0;
    double droppedSum = 0.0;
    double coverageSum = 0.0;
    for (std::size_t i = 0; i < generator.appCount(); ++i) {
      const auto job = generator.makeJob(i);
      util::SimClock clock;
      std::unique_ptr<rt::MethodTracer> tracer;
      if (useUnique)
        tracer = std::make_unique<rt::UniqueMethodTracer>();
      else
        tracer = std::make_unique<rt::RingBufferTracer>(kStockBufferEntries);

      util::Rng rng(options.seed + i);
      net::NetworkStack stack(generator.farm(), clock, rng.fork(1));
      rt::Interpreter runtime(job.program, stack, *tracer, clock, rng.fork(2));
      runtime.start();
      monkey::MonkeyConfig monkeyConfig;
      monkeyConfig.events = options.monkeyEvents;
      monkeyConfig.throttleMs = options.throttleMs;
      monkey::exercise(runtime, clock, monkeyConfig);

      const auto trace = tracer->traceFile();
      const std::unordered_set<std::string> unique(trace.begin(), trace.end());
      uniqueSum += static_cast<double>(unique.size());
      droppedSum += static_cast<double>(tracer->droppedCount());
      const std::vector<std::string> traceVector(unique.begin(), unique.end());
      coverageSum += core::MethodMonitor::computeCoverage(traceVector, job.apk).ratio();
    }
    const double apps = static_cast<double>(generator.appCount());
    std::printf("%12s %18.0f %18.0f %11.2f%%\n",
                useUnique ? "unique-set" : "stock-20k", uniqueSum / apps,
                droppedSum / apps, 100.0 * coverageSum / apps);
  }
  std::printf("\n(the stock buffer drops repeated-call floods and loses "
              "late-first-seen methods,\n understating coverage — the "
              "motivation for the paper's ART change)\n");
  return 0;
}
