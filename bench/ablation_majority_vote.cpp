// Ablation: Listing 2's majority-vote category prediction versus taking
// the longest matching prefix's own category, and versus no prediction.
//
// When several known libraries share a vendor prefix with conflicting
// categories (com.unity3d is Game Engine, com.unity3d.ads Advertisement),
// the vote decides; this bench quantifies how often the mechanisms
// disagree across all origins a study observes.
#include "common/study.hpp"

#include <set>

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.appCount = std::min<std::size_t>(options.appCount, 150);
  bench::printHeader("Ablation — majority-vote category prediction", options);

  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();

  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  std::set<std::string> origins;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    orch::EmulatorConfig config;
    config.monkey.events = 400;
    config.seed = options.seed + i;
    orch::EmulatorInstance emulator(generator.farm(), nullptr, config);
    const auto artifacts = emulator.run(job.apk, job.program);
    for (const auto& flow : attributor.attribute(artifacts))
      if (!flow.builtinOrigin) origins.insert(flow.originLibrary.str());
  }

  std::size_t exactHit = 0;
  std::size_t voteResolved = 0;
  std::size_t voteDisagreesWithPrefixOwn = 0;
  std::size_t unknown = 0;
  for (const auto& origin : origins) {
    if (corpus.categoryOf(origin) != nullptr) {
      ++exactHit;
      continue;
    }
    const auto prediction = corpus.predictCategory(origin);
    if (prediction.category == radar::kUnknownCategory) {
      ++unknown;
      continue;
    }
    ++voteResolved;
    const std::string* prefixOwn = corpus.categoryOf(prediction.matchedPrefix);
    if (prefixOwn != nullptr && *prefixOwn != prediction.category)
      ++voteDisagreesWithPrefixOwn;
  }

  std::printf("origin-libraries observed:            %zu\n", origins.size());
  std::printf("  exact corpus entries:               %zu\n", exactHit);
  std::printf("  resolved only by majority vote:     %zu\n", voteResolved);
  std::printf("    where the vote overrides the matched prefix's own category: %zu\n",
              voteDisagreesWithPrefixOwn);
  std::printf("  unresolvable (first-party/unknown): %zu\n", unknown);

  // The canonical Listing 2 example, for the record.
  const auto example = corpus.predictCategory("com.unity3d.example");
  std::printf("\nListing 2 check: com.unity3d.example -> %s (votes:",
              example.category.c_str());
  for (const auto& [category, count] : example.votes)
    std::printf(" %s:%d", category.c_str(), count);
  std::printf(")\n");
  return 0;
}
