// Regenerates Fig. 8: average data transfer per app category.
//
// Paper reference: MUSIC_AND_AUDIO and NEWS_AND_MAGAZINES transmit the
// most per app (their functionality is network-bound), with SPORTS, GAMES
// and BOOKS_AND_REFERENCE next; DATING and FINANCE sit at the bottom.
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 8 — average transfer per app category", options);
  const auto result = bench::runStudy(options);

  std::vector<std::pair<std::string, double>> rows;
  for (const auto& [category, avg] : result.study.avgBytesPerAppByCategory())
    rows.emplace_back(category, avg);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [category, avg] : rows)
    std::printf("  %-24s %12s/app\n", category.c_str(), bench::bytesStr(avg).c_str());

  // Shape check against the paper's extremes.
  const auto avgOf = [&](const std::string& name) {
    for (const auto& [category, avg] : rows)
      if (category == name) return avg;
    return 0.0;
  };
  std::printf("\nMUSIC/DATING factor: %.1fx (paper: music at the top, dating at the bottom)\n",
              avgOf("MUSIC_AND_AUDIO") / std::max(1.0, avgOf("DATING")));
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
