// §I / §V / RQ2 quantified: the prior-work ad-traffic detectors — the
// User-Agent classifier of Xu et al. / Maier et al. and the hostname
// classifier of Tongaonkar et al. — scored against Libspector's
// context-aware attribution on the same study.
//
// Paper argument: "the prevalence of generic identifiers in HTTP headers,
// same hosts serving multiple apps and the use of Content Distribution
// Networks render a purely network-focused analysis of library traffic
// insufficient for reliable traffic attribution."
#include "common/study.hpp"

#include <mutex>
#include <optional>

#include "core/attribution.hpp"
#include "core/baseline.hpp"
#include "orch/collector.hpp"
#include "orch/dispatcher.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader(
      "Baselines — User-Agent and hostname ad detection vs app context",
      options);

  // This bench needs the raw captures alongside the flows, so it runs the
  // pipeline itself instead of using the shared aggregator harness.
  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  const core::UserAgentAdClassifier uaClassifier;
  const core::HostnameAdClassifier hostClassifier;
  const auto isAdTruth = [](const core::FlowRecord& flow) {
    return flow.libraryCategory == "Advertisement";
  };

  core::BaselineScore uaScore;
  core::BaselineScore hostScore;
  core::BaselineScore comboScore;
  std::size_t exchanges = 0;

  orch::CollectionServer collector;
  orch::Dispatcher dispatcher(generator.farm(), &collector, {});
  std::size_t next = 0;
  dispatcher.run(
      [&]() -> std::optional<orch::Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return orch::Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](core::RunArtifacts&& artifacts) {
        const auto flows = attributor.attribute(artifacts);
        const auto joined = core::joinExchangesToFlows(flows, artifacts.capture);
        exchanges += joined.size();
        const auto accumulate = [&](core::BaselineScore& total,
                                    const core::BaselineScore& part) {
          total.truePositives += part.truePositives;
          total.falsePositives += part.falsePositives;
          total.falseNegatives += part.falseNegatives;
          total.trueNegatives += part.trueNegatives;
          total.missedBytes += part.missedBytes;
        };
        accumulate(uaScore,
                   core::scoreBaseline(joined, isAdTruth,
                                       [&](const core::JoinedExchange& e) {
                                         return uaClassifier.isAdTraffic(*e.exchange);
                                       }));
        accumulate(hostScore,
                   core::scoreBaseline(joined, isAdTruth,
                                       [&](const core::JoinedExchange& e) {
                                         return hostClassifier.isAdTraffic(e.exchange->host);
                                       }));
        accumulate(comboScore,
                   core::scoreBaseline(
                       joined, isAdTruth, [&](const core::JoinedExchange& e) {
                         return uaClassifier.isAdTraffic(*e.exchange) ||
                                hostClassifier.isAdTraffic(e.exchange->host);
                       }));
      });

  std::printf("HTTP exchanges joined to flows: %zu\n\n", exchanges);
  std::printf("%-28s %10s %10s %8s %14s\n", "ad-traffic detector",
              "precision", "recall", "F1", "missed bytes");
  const auto print = [](const char* label, const core::BaselineScore& s) {
    std::printf("%-28s %9.1f%% %9.1f%% %7.2f %14s\n", label,
                100.0 * s.precision(), 100.0 * s.recall(), s.f1(),
                bench::bytesStr(static_cast<double>(s.missedBytes)).c_str());
  };
  print("User-Agent (Xu/Maier)", uaScore);
  print("hostname (Tongaonkar)", hostScore);
  print("UA + hostname combined", comboScore);
  std::printf("%-28s %9.1f%% %9.1f%%   %5.2f %14s\n",
              "Libspector (app context)", 100.0, 100.0, 1.0, "0 B");

  std::printf("\n(UA misses SDKs riding the generic Dalvik UA; hostnames miss "
              "ad creatives on CDNs\n and generic API hosts — only runtime "
              "context attributes all of it)\n");
  return 0;
}
