// Pipelined app-store generation throughput, tracked from PR 4 onward.
//
// Two axes:
//   - job expansion: makeJob + apk hashing through the serial pull-through
//     path vs the JobPrefetcher's generator pool at several thread counts
//     (a consumer draining as fast as next() delivers);
//   - hashing: ApkFile::sha256() as one streaming serialization walk vs
//     the seed path (materialize serialize(), then hash the buffer).
//
// The headline comparison drains a fixed corpus through the prefetcher at
// 0 (serial), 2, 4 and hardware-thread generators, prints apps/sec per
// configuration, and writes BENCH_store.json so the perf trajectory is
// machine-readable. Scaling is flat on 1-core CI boxes; the >=3x pipeline
// criterion applies on multi-core hardware. The google-benchmark
// microbenchmarks after it isolate the hash path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "store/prefetch.hpp"
#include "util/sha256.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kApps = 96;

const store::AppStoreGenerator& benchGenerator() {
  static const store::AppStoreGenerator kGenerator([] {
    store::StoreConfig config;
    config.appCount = kApps;
    config.seed = 20200629;
    config.methodScale = 0.15;  // full-size default: realistic dex walks
    return config;
  }());
  return kGenerator;
}

struct DrainResult {
  double seconds = 0.0;
  store::JobPrefetcher::Stats stats;
};

/// Drain the whole corpus through a prefetcher with `threads` generators,
/// consuming as fast as next() delivers (the dispatcher's source lock is
/// not the bottleneck here; expansion is).
DrainResult drainCorpus(std::size_t threads) {
  store::PrefetchConfig config;
  config.threads = threads;
  config.capacity = 32;
  store::JobPrefetcher prefetcher(benchGenerator(), config);
  const auto start = std::chrono::steady_clock::now();
  std::size_t delivered = 0;
  while (auto item = prefetcher.next()) {
    benchmark::DoNotOptimize(item->apkSha256.data());
    ++delivered;
  }
  DrainResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.stats = prefetcher.stats();
  if (delivered != kApps) std::fprintf(stderr, "short drain: %zu\n", delivered);
  return result;
}

void runHeadlineComparison() {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> threadCounts{0, 2, 4};
  if (std::find(threadCounts.begin(), threadCounts.end(), hardware) ==
      threadCounts.end())
    threadCounts.push_back(hardware);

  std::printf("=== store generation: %zu apps, expand + streaming sha256 ===\n",
              kApps);
  std::vector<DrainResult> results;
  double serialRate = 0.0;
  for (const std::size_t threads : threadCounts) {
    const auto result = drainCorpus(threads);
    results.push_back(result);
    const double rate = static_cast<double>(kApps) / result.seconds;
    if (threads == 0) serialRate = rate;
    std::printf(
        "%zu threads%s: %8.3f s  (%7.1f apps/s, window high-water %zu, "
        "consumer waits %zu)%s\n",
        threads, threads == 0 ? " (serial)" : "", result.seconds, rate,
        result.stats.maxOutstanding, result.stats.consumerWaits,
        threads == 0 ? "" :
            (" -- " + std::to_string(rate / serialRate) + "x").c_str());
  }
  std::printf("\n");

  if (std::FILE* json = std::fopen("BENCH_store.json", "w")) {
    std::fprintf(json, "{\n  \"apps\": %zu,\n  \"hardware_threads\": %zu,\n",
                 kApps, hardware);
    std::fprintf(json, "  \"configurations\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const double rate = static_cast<double>(kApps) / results[i].seconds;
      std::fprintf(json,
                   "    {\"threads\": %zu, \"seconds\": %.6f, "
                   "\"apps_per_sec\": %.2f, \"speedup_vs_serial\": %.3f, "
                   "\"max_outstanding\": %zu, \"consumer_waits\": %zu}%s\n",
                   threadCounts[i], results[i].seconds, rate,
                   serialRate > 0.0 ? rate / serialRate : 0.0,
                   results[i].stats.maxOutstanding,
                   results[i].stats.consumerWaits,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_store.json\n\n");
  }
}

// ---------------------------------------------------------------------------
// Microbenchmarks: the hash path in isolation.
// ---------------------------------------------------------------------------

void BM_Sha256Streaming(benchmark::State& state) {
  // The PR 4 path: one serialization walk feeding the hasher, no buffer.
  const auto job = benchGenerator().makeJob(0);
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(job.apk.sha256());
    if (bytes == 0) bytes = job.apk.serialize().size();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Sha256Streaming)->Unit(benchmark::kMicrosecond);

void BM_Sha256Buffered(benchmark::State& state) {
  // The seed path: materialize the serialized apk, then hash the buffer.
  const auto job = benchGenerator().makeJob(0);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buffer = job.apk.serialize();
    bytes = buffer.size();
    benchmark::DoNotOptimize(
        util::Sha256::hash(std::span(buffer.data(), buffer.size())));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Sha256Buffered)->Unit(benchmark::kMicrosecond);

void BM_MakeJob(benchmark::State& state) {
  // Expansion alone (no hashing): the unit of work the pool parallelizes.
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(benchGenerator().makeJob(i++ % kApps));
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_MakeJob)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  runHeadlineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
