// Regenerates Fig. 3: top data-transferring origin-libraries (top panel)
// and 2-level libraries (bottom panel).
//
// Paper reference (top): com.unity3d.player 1.59 GB leads; ad networks
// (vungle, chartboost, gms.internal ads, ironsource, unity3d.ads caches),
// image/content loaders (glide, picasso, volley, okhttp3.internal.http,
// universalimageloader) and "*-Advertisement" built-in traffic follow.
// (bottom): com.google 2.84 GB, com.unity3d + com.gameloft 2.82 GB,
// com.android shown as built-in.
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 3 — top origin-libraries and 2-level libraries",
                     options);
  const auto result = bench::runStudy(options);

  std::printf("Top 15 origin-libraries:\n");
  for (const auto& entry : result.study.topOriginLibraries(15)) {
    std::printf("  %-48s %12s  [%s]\n", entry.name.c_str(),
                bench::bytesStr(static_cast<double>(entry.bytes)).c_str(),
                entry.category.c_str());
  }

  std::printf("\nTop 15 2-level libraries:\n");
  for (const auto& entry : result.study.topTwoLevelLibraries(15)) {
    std::printf("  %-32s %12s\n", entry.name.c_str(),
                bench::bytesStr(static_cast<double>(entry.bytes)).c_str());
  }
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
