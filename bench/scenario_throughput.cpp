// Scenario-workload sanity bench (§14). Runs the full per-app pipeline
// (generate -> emulate -> attribute) twice over the same corpus size —
// legacy flags-off vs all three scenarios on — and checks that the new
// workloads actually materialise in the attributed flows:
//
//   - keep-alive reuse produces flows with requestOrdinal >= 1 and sockets
//     whose requests attribute to more than one origin library;
//   - the capture RTT axis measures a latency for the bulk of flows;
//   - the scenario pipeline keeps an apps/sec rate in the same order of
//     magnitude as the legacy one (the pooling and elision passes must not
//     blow up attribution).
//
// Writes BENCH_scenarios.json in the cwd for scripts/check_bench_floor.py.
// Deliberately not linked against google-benchmark: the headline numbers
// are corpus properties plus one coarse wall-clock rate.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kApps = 80;
constexpr std::uint64_t kSeed = 20200629;

struct PipelineNumbers {
  std::size_t flows = 0;
  std::size_t pooledFlows = 0;        // requestOrdinal >= 1
  std::size_t sockets = 0;            // distinct (app, socket pair)
  std::size_t multiLibrarySockets = 0;  // >= 2 origin libraries on one socket
  std::size_t rttMeasuredFlows = 0;   // rttMs > 0
  double wallSeconds = 0.0;
};

PipelineNumbers runPipeline(const rt::ScenarioConfig& scenarios,
                            std::size_t apps) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = apps;
  storeConfig.seed = kSeed;
  storeConfig.methodScale = 0.15;
  storeConfig.scenarios = scenarios;
  const store::AppStoreGenerator generator(storeConfig);
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  const core::TrafficAttributor attributor(radar::LibraryCorpus::builtin(),
                                           categorizer);

  PipelineNumbers numbers;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    orch::EmulatorConfig config;
    config.monkey.events = 1000;
    config.monkey.throttleMs = 500;
    config.seed = 0x11b59ec701ULL + i;
    config.scenario = scenarios;
    orch::EmulatorInstance emulator(generator.farm(), nullptr, config);
    const auto run = emulator.run(job.apk, job.program);
    const auto flows = attributor.attribute(run);

    std::map<net::SocketPair, std::set<std::string>> librariesPerSocket;
    for (const auto& flow : flows) {
      ++numbers.flows;
      if (flow.requestOrdinal >= 1) ++numbers.pooledFlows;
      if (flow.rttMs > 0) ++numbers.rttMeasuredFlows;
      librariesPerSocket[flow.socketPair].insert(flow.originLibrary.str());
    }
    numbers.sockets += librariesPerSocket.size();
    for (const auto& [pair, libraries] : librariesPerSocket)
      if (libraries.size() >= 2) ++numbers.multiLibrarySockets;
  }
  numbers.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return numbers;
}

double ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

int main() {
  std::printf("=== Scenario workloads: corpus properties + pipeline rate ===\n");
  std::printf("(corpus: %zu apps, seed %llu, both worlds emulated fully)\n\n",
              kApps, static_cast<unsigned long long>(kSeed));

  const PipelineNumbers legacy = runPipeline({}, kApps);

  rt::ScenarioConfig scenarios;
  scenarios.keepAliveReuse = true;
  scenarios.adversarialApps = true;
  scenarios.backgroundSync = true;
  const PipelineNumbers scenario = runPipeline(scenarios, kApps);

  const double legacyRate = ratio(kApps, legacy.wallSeconds);
  const double scenarioRate = ratio(kApps, scenario.wallSeconds);
  const double pooledFraction =
      ratio(static_cast<double>(scenario.pooledFlows),
            static_cast<double>(scenario.flows));
  const double multiLibraryFraction =
      ratio(static_cast<double>(scenario.multiLibrarySockets),
            static_cast<double>(scenario.sockets));
  const double rttFraction =
      ratio(static_cast<double>(scenario.rttMeasuredFlows),
            static_cast<double>(scenario.flows));

  std::printf("%-34s %12s %12s\n", "", "legacy", "scenario");
  std::printf("%-34s %12zu %12zu\n", "flows", legacy.flows, scenario.flows);
  std::printf("%-34s %12zu %12zu\n", "sockets", legacy.sockets,
              scenario.sockets);
  std::printf("%-34s %12zu %12zu\n", "pooled flows (ordinal >= 1)",
              legacy.pooledFlows, scenario.pooledFlows);
  std::printf("%-34s %12zu %12zu\n", "multi-library sockets",
              legacy.multiLibrarySockets, scenario.multiLibrarySockets);
  std::printf("%-34s %12zu %12zu\n", "RTT-measured flows",
              legacy.rttMeasuredFlows, scenario.rttMeasuredFlows);
  std::printf("%-34s %9.2f /s %9.2f /s\n", "pipeline rate", legacyRate,
              scenarioRate);
  std::printf("\npooled flow fraction:       %.3f\n", pooledFraction);
  std::printf("multi-library socket frac:  %.3f\n", multiLibraryFraction);
  std::printf("RTT measured fraction:      %.3f\n", rttFraction);

  if (std::FILE* json = std::fopen("BENCH_scenarios.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"apps\": %zu,\n"
                 "  \"legacy_flows\": %zu,\n"
                 "  \"scenario_flows\": %zu,\n"
                 "  \"scenario_sockets\": %zu,\n"
                 "  \"pooled_flows\": %zu,\n"
                 "  \"multi_library_sockets\": %zu,\n"
                 "  \"rtt_measured_flows\": %zu,\n"
                 "  \"pooled_flow_fraction\": %.4f,\n"
                 "  \"multi_library_socket_fraction\": %.4f,\n"
                 "  \"rtt_measured_fraction\": %.4f,\n"
                 "  \"legacy_apps_per_sec\": %.2f,\n"
                 "  \"scenario_apps_per_sec\": %.2f\n"
                 "}\n",
                 kApps, legacy.flows, scenario.flows, scenario.sockets,
                 scenario.pooledFlows, scenario.multiLibrarySockets,
                 scenario.rttMeasuredFlows, pooledFraction,
                 multiLibraryFraction, rttFraction, legacyRate, scenarioRate);
    std::fclose(json);
    std::printf("\nwrote BENCH_scenarios.json\n");
  }
  return 0;
}
