// §II-B3 performance analysis: the Socket Supervisor's per-request
// overhead on the device, and the offline attribution cost per app.
//
// Paper reference: Libspector incurs a 0.5 ms (9.75%) worst-case packet
// delay per request on the device; offline analysis and heuristics take
// less than 5 seconds per app.
//
// This is a google-benchmark binary: the interesting comparison is
// request dispatch with the supervisor attached vs without.
#include <benchmark/benchmark.h>

#include "core/attribution.hpp"
#include "core/supervisor.hpp"
#include "hook/xposed.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "rt/tracer.hpp"
#include "store/generator.hpp"
#include "vtsim/categorizer.hpp"

namespace {

using namespace libspector;

struct RequestWorld {
  RequestWorld() {
    net::EndpointProfile profile;
    profile.domain = "api.bench.com";
    profile.trueCategory = "info_tech";
    profile.responseLogMu = 9.0;
    farm.addEndpoint(profile);

    apk.packageName = "com.bench.app";
    rt::NetRequestAction request;
    request.domain = "api.bench.com";
    const auto helper = program.addMethod("Lcom/lib/b;->a()V", {request});
    const auto task =
        program.addMethod("Lcom/lib/b;->doInBackground()V", {rt::CallAction{helper}});
    const auto handler =
        program.addMethod("Lcom/bench/app/H;->onClick()V", {rt::AsyncAction{task}});
    program.uiHandlers.push_back(handler);

    dex::DexFile dexFile;
    dex::ClassDef cls;
    cls.dottedName = "x";
    for (const auto& method : program.methods)
      cls.methods.push_back({method.signature});
    dexFile.classes.push_back(cls);
    apk.dexFiles.push_back(dexFile);
  }

  net::ServerFarm farm;
  dex::ApkFile apk;
  rt::AppProgram program;
};

void BM_RequestWithoutSupervisor(benchmark::State& state) {
  const RequestWorld world;
  util::SimClock clock;
  rt::UniqueMethodTracer tracer;
  net::NetworkStack stack(world.farm, clock, util::Rng(1));
  rt::Interpreter runtime(world.program, stack, tracer, clock, util::Rng(2));
  for (auto _ : state) {
    runtime.dispatchUiEvent();
    benchmark::DoNotOptimize(runtime.socketsCreated());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runtime.socketsCreated()));
}
BENCHMARK(BM_RequestWithoutSupervisor);

void BM_RequestWithSupervisor(benchmark::State& state) {
  const RequestWorld world;
  util::SimClock clock;
  rt::UniqueMethodTracer tracer;
  net::NetworkStack stack(world.farm, clock, util::Rng(1));
  rt::Interpreter runtime(world.program, stack, tracer, clock, util::Rng(2));
  hook::XposedFramework xposed;
  xposed.installModule(std::make_shared<core::SocketSupervisor>());
  xposed.attachToApp(runtime, world.apk);
  for (auto _ : state) {
    runtime.dispatchUiEvent();
    benchmark::DoNotOptimize(runtime.socketsCreated());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runtime.socketsCreated()));
}
BENCHMARK(BM_RequestWithSupervisor);

// The supervisor's hook body alone: stack walk + translation + getsockname/
// getpeername + UDP encode (the 0.5 ms budget item in the paper).
void BM_SupervisorHookBody(benchmark::State& state) {
  const RequestWorld world;
  util::SimClock clock;
  rt::UniqueMethodTracer tracer;
  net::NetworkStack stack(world.farm, clock, util::Rng(1));
  rt::Interpreter runtime(world.program, stack, tracer, clock, util::Rng(2));
  auto supervisor = std::make_shared<core::SocketSupervisor>();
  supervisor->onAppLoaded(runtime, world.apk);
  // Keep one socket open and re-fire the registered hook on it.
  const auto conn = stack.connectTcp("api.bench.com", 443);
  rt::PostHook hookCopy;
  runtime.registerPostHook("bench.probe", [](const rt::SocketHookContext&) {});
  for (auto _ : state) {
    // Exercise the full per-socket path via a fresh connection every 64
    // iterations (ephemeral-port hygiene) and the hook body each time.
    const rt::SocketHookContext context{conn->id, runtime};
    benchmark::DoNotOptimize(&context);
    // Directly invoking the supervisor path: one report per iteration.
    // (Measured through the public seam: dispatch a UI event periodically.)
    runtime.dispatchUiEvent();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(supervisor->reportsSent()));
}
BENCHMARK(BM_SupervisorHookBody);

// Offline analysis per app (paper: < 5 s/app excluding scraping).
void BM_OfflineAttributionPerApp(benchmark::State& state) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = 16;
  storeConfig.seed = 7;
  storeConfig.methodScale = 0.15;
  const store::AppStoreGenerator generator(storeConfig);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  // Pre-run the emulation; benchmark only the offline pipeline.
  std::vector<core::RunArtifacts> runs;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    orch::EmulatorConfig config;
    config.monkey.events = 200;
    config.seed = 100 + i;
    orch::EmulatorInstance emulator(generator.farm(), nullptr, config);
    runs.push_back(emulator.run(job.apk, job.program));
  }

  std::size_t index = 0;
  for (auto _ : state) {
    const auto flows = attributor.attribute(runs[index % runs.size()]);
    benchmark::DoNotOptimize(flows.size());
    ++index;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(index));
  state.SetLabel("paper budget: <5s per app");
}
BENCHMARK(BM_OfflineAttributionPerApp);

}  // namespace

BENCHMARK_MAIN();
