// Regenerates Fig. 10 / §IV-C: Java method coverage per app.
//
// Paper reference: apks contain 49,138 methods on average (27.3% above
// average); mean coverage is 9.5% with 40.5% of apps above the mean —
// consistent with Zheng et al.'s 10.3% after 18 monkey-hours.
#include "common/study.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("Fig. 10 — method coverage per app", options);
  const auto result = bench::runStudy(options);
  const auto coverage = result.study.coverageStats();

  std::printf("mean methods per apk: %.0f (method scale %.2f -> full-scale ~%.0f; paper 49,138)\n",
              coverage.meanMethodsPerApk, options.methodScale,
              coverage.meanMethodsPerApk / options.methodScale);
  std::printf("mean coverage:        %.2f%% (paper 9.5%%)\n", 100.0 * coverage.mean);
  std::printf("apps above mean:      %.1f%% (paper 40.5%%)\n",
              100.0 * coverage.fractionAboveMean);

  std::printf("\ncoverage distribution (sorted, %%):\n  ");
  const auto& perApp = coverage.perApp;
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    if (perApp.empty()) break;
    std::printf("p%.0f=%.2f  ", 100 * q,
                100.0 * perApp[static_cast<std::size_t>(q * (perApp.size() - 1))]);
  }
  std::printf("\n\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
