// Ablation: longest-matching-prefix library resolution (§III-C) versus an
// exact-match-only corpus lookup.
//
// LibRadar knows "com.unity3d.ads" but apps run code in arbitrarily deep
// sub-packages ("com.unity3d.ads.android.cache"); without hierarchical
// prefix matching most origins would fall into Unknown.
#include "common/study.hpp"

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  auto options = bench::optionsFromArgs(argc, argv);
  options.appCount = std::min<std::size_t>(options.appCount, 150);
  bench::printHeader("Ablation — longest-prefix vs exact-match categorization",
                     options);

  store::StoreConfig storeConfig;
  storeConfig.appCount = options.appCount;
  storeConfig.seed = options.seed;
  storeConfig.methodScale = options.methodScale;
  const store::AppStoreGenerator generator(storeConfig);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();

  // Gather every origin-library observed in a real study pass.
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  std::map<std::string, std::uint64_t> bytesByOrigin;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    orch::EmulatorConfig config;
    config.monkey.events = options.monkeyEvents;
    config.monkey.throttleMs = options.throttleMs;
    config.seed = options.seed + i;
    orch::EmulatorInstance emulator(generator.farm(), nullptr, config);
    const auto artifacts = emulator.run(job.apk, job.program);
    for (const auto& flow : attributor.attribute(artifacts)) {
      if (!flow.builtinOrigin)
        bytesByOrigin[flow.originLibrary.str()] += flow.sentBytes + flow.recvBytes;
    }
  }

  std::uint64_t total = 0;
  std::uint64_t categorizedPrefix = 0;
  std::uint64_t categorizedExact = 0;
  std::size_t libsPrefix = 0;
  std::size_t libsExact = 0;
  for (const auto& [origin, bytes] : bytesByOrigin) {
    total += bytes;
    if (corpus.predictCategory(origin).category != radar::kUnknownCategory) {
      categorizedPrefix += bytes;
      ++libsPrefix;
    }
    if (corpus.categoryOf(origin) != nullptr) {
      categorizedExact += bytes;
      ++libsExact;
    }
  }

  std::printf("observed origin-libraries: %zu, traffic %s\n\n",
              bytesByOrigin.size(),
              bench::bytesStr(static_cast<double>(total)).c_str());
  std::printf("%-26s %14s %16s\n", "resolution", "libs categorized",
              "traffic categorized");
  std::printf("%-26s %10zu/%-5zu %15.1f%%\n", "exact match only", libsExact,
              bytesByOrigin.size(),
              total ? 100.0 * static_cast<double>(categorizedExact) /
                          static_cast<double>(total)
                    : 0.0);
  std::printf("%-26s %10zu/%-5zu %15.1f%%\n", "longest prefix (paper)",
              libsPrefix, bytesByOrigin.size(),
              total ? 100.0 * static_cast<double>(categorizedPrefix) /
                          static_cast<double>(total)
                    : 0.0);
  std::printf("\n(exact matching misses deep sub-packages; hierarchical prefix "
              "matching is what\n makes LibRadar output usable for stack-trace "
              "origins)\n");
  return 0;
}
