// spectord wire throughput: framed Report datagrams from a fleet of
// IngestClients through the duplex-channel protocol (incremental parser,
// bounded write queues, single event-loop thread) into one collector
// daemon. The price of the service shape over in-process ingest is the
// protocol layer; this benchmark reports frames/sec per collector so the
// floor gate catches a regression in the daemon's event loop or parser.
//
// Writes BENCH_spectord.json in the cwd.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "spectord/client.hpp"
#include "spectord/daemon.hpp"
#include "spectord/resilient.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kApps = 32;
constexpr std::uint64_t kFramesPerApp = 1500;

core::UdpReport benchReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(1024 + (seq % 60000))},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;
  report.stackSignatures = {
      "java.net.Socket.connect",
      "Lcom/squareup/okhttp/internal/io/RealConnection;->connectSocket()V",
      "Lcom/example/app/net/Api;->fetch()V"};
  return report;
}

/// Datagrams grouped per app: each app's ordered sequence must flow over
/// one client connection so the daemon's loss accounting sees a clean
/// stream (as it would from one emulator worker).
struct Corpus {
  Corpus() {
    perApp.resize(kApps);
    for (std::size_t app = 0; app < kApps; ++app) {
      perApp[app].reserve(kFramesPerApp);
      const std::string sha = "benchapp" + std::to_string(app);
      for (std::uint64_t seq = 0; seq < kFramesPerApp; ++seq)
        perApp[app].push_back(
            core::ReportFrame{static_cast<std::uint32_t>(app), seq,
                              benchReport(sha, seq)}
                .encode());
    }
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> perApp;
};

const Corpus& corpus() {
  static const Corpus kCorpus;
  return kCorpus;
}

/// Stream the whole corpus into a fresh daemon from `clients` connections
/// (apps striped across clients); returns wall seconds until every frame
/// is acked and folded.
double streamCorpus(std::size_t clients) {
  spectord::DaemonConfig config;
  config.ingest.shards = 2;
  config.ingest.queueCapacity = 8192;
  spectord::SpectorDaemon daemon(
      config, [](const core::RunArtifacts&) {
        return std::vector<core::FlowRecord>{};
      });

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&daemon, c, clients] {
        spectord::IngestClient client(daemon.connect(),
                                      /*clientId=*/100 + c);
        std::uint64_t sent = 0;
        for (std::size_t app = c; app < kApps; app += clients)
          for (const auto& datagram : corpus().perApp[app]) {
            client.submitDatagram(datagram);
            ++sent;
          }
        client.waitAckedFrames(sent, std::chrono::milliseconds(60000));
        client.bye();
      });
    }
  }
  daemon.drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  daemon.shutdown();
  return seconds;
}

/// Reconnect storm: the same corpus, but every connection a client opens
/// is severed after `killEveryBytes` — each client rides through several
/// kill/backoff/resume/replay cycles. Reported separately; the steady-
/// state frames/sec above stays the gated headline.
struct StormStats {
  double seconds = 0;
  std::uint64_t reconnects = 0;
};

StormStats streamStorm(std::size_t clients, std::uint64_t killEveryBytes) {
  spectord::DaemonConfig config;
  config.ingest.shards = 2;
  config.ingest.queueCapacity = 8192;
  spectord::SpectorDaemon daemon(
      config, [](const core::RunArtifacts&) {
        return std::vector<core::FlowRecord>{};
      });

  std::atomic<std::uint64_t> reconnects{0};
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&daemon, &reconnects, c, clients,
                            killEveryBytes] {
        std::vector<std::unique_ptr<spectord::BreakerEndpoint>> breakers;
        spectord::ResilientClientConfig clientConfig;
        clientConfig.reconnect.initialDelay = std::chrono::milliseconds(1);
        clientConfig.reconnect.maxDelay = std::chrono::milliseconds(10);
        clientConfig.reconnect.seed = 100 + c;
        spectord::ResilientIngestClient client(
            [&daemon, &breakers, killEveryBytes](std::size_t) {
              spectord::BreakerEndpoint::Fault fault;
              fault.kind = spectord::BreakerEndpoint::FaultKind::Sever;
              fault.afterClientBytes = killEveryBytes;
              breakers.push_back(
                  std::make_unique<spectord::BreakerEndpoint>(daemon.connect(),
                                                              fault));
              return breakers.back()->clientEnd();
            },
            /*clientId=*/200 + c, clientConfig);
        for (std::size_t app = c; app < kApps; app += clients)
          for (const auto& datagram : corpus().perApp[app])
            client.submitDatagram(datagram);
        client.waitAckedFrames(client.framesOffered(),
                               std::chrono::milliseconds(60000));
        reconnects.fetch_add(client.reconnects());
        client.bye();
      });
    }
  }
  daemon.drain();
  StormStats stats;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats.reconnects = reconnects.load();
  daemon.shutdown();
  return stats;
}

}  // namespace

int main() {
  const double total = static_cast<double>(kApps * kFramesPerApp);
  const std::size_t fleet =
      std::max<std::size_t>(2, std::thread::hardware_concurrency() / 2);

  const double oneSeconds = streamCorpus(1);
  const double fleetSeconds = streamCorpus(fleet);
  const double oneRate = total / oneSeconds;
  const double fleetRate = total / fleetSeconds;

  // Storm sizing: sever each connection after ~1/5 of a client's share so
  // every client rides through several kill/resume cycles and the final
  // connection still finishes.
  std::uint64_t clientBytes = 0;
  for (std::size_t app = 0; app < kApps; app += fleet)
    for (const auto& datagram : corpus().perApp[app])
      clientBytes += datagram.size() + 14;  // framed wire size
  const std::uint64_t killEvery =
      std::max<std::uint64_t>(clientBytes / 5, 4096);
  const StormStats storm = streamStorm(fleet, killEvery);
  const double stormRate = total / storm.seconds;

  std::printf("=== spectord wire throughput: %zu apps x %llu datagrams ===\n",
              kApps, static_cast<unsigned long long>(kFramesPerApp));
  std::printf("1 client  : %8.3f s  (%10.0f frames/s)\n", oneSeconds, oneRate);
  std::printf("%zu clients: %8.3f s  (%10.0f frames/s)\n", fleet,
              fleetSeconds, fleetRate);
  std::printf("storm     : %8.3f s  (%10.0f frames/s, %llu reconnects)\n",
              storm.seconds, stormRate,
              static_cast<unsigned long long>(storm.reconnects));

  if (std::FILE* json = std::fopen("BENCH_spectord.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"apps\": %zu,\n"
                 "  \"datagrams\": %.0f,\n"
                 "  \"fleet_clients\": %zu,\n"
                 "  \"one_client_seconds\": %.6f,\n"
                 "  \"one_client_frames_per_sec\": %.1f,\n"
                 "  \"fleet_seconds\": %.6f,\n"
                 "  \"frames_per_sec\": %.1f,\n"
                 "  \"storm_kill_every_bytes\": %llu,\n"
                 "  \"storm_reconnects\": %llu,\n"
                 "  \"storm_seconds\": %.6f,\n"
                 "  \"storm_frames_per_sec\": %.1f\n"
                 "}\n",
                 kApps, total, fleet, oneSeconds, oneRate, fleetSeconds,
                 fleetRate, static_cast<unsigned long long>(killEvery),
                 static_cast<unsigned long long>(storm.reconnects),
                 storm.seconds, stormRate);
    std::fclose(json);
    std::printf("wrote BENCH_spectord.json\n");
  }
  return 0;
}
