// spectord wire throughput: framed Report datagrams from a fleet of
// IngestClients through the duplex-channel protocol (incremental parser,
// bounded write queues, single event-loop thread) into one collector
// daemon. The price of the service shape over in-process ingest is the
// protocol layer; this benchmark reports frames/sec per collector so the
// floor gate catches a regression in the daemon's event loop or parser.
//
// Writes BENCH_spectord.json in the cwd.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "spectord/client.hpp"
#include "spectord/daemon.hpp"

namespace {

using namespace libspector;

constexpr std::size_t kApps = 32;
constexpr std::uint64_t kFramesPerApp = 1500;

core::UdpReport benchReport(const std::string& sha, std::uint64_t seq) {
  core::UdpReport report;
  report.apkSha256 = sha;
  report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                        static_cast<std::uint16_t>(1024 + (seq % 60000))},
                       {net::Ipv4Addr(198, 18, 0, 1), 443}};
  report.timestampMs = seq;
  report.stackSignatures = {
      "java.net.Socket.connect",
      "Lcom/squareup/okhttp/internal/io/RealConnection;->connectSocket()V",
      "Lcom/example/app/net/Api;->fetch()V"};
  return report;
}

/// Datagrams grouped per app: each app's ordered sequence must flow over
/// one client connection so the daemon's loss accounting sees a clean
/// stream (as it would from one emulator worker).
struct Corpus {
  Corpus() {
    perApp.resize(kApps);
    for (std::size_t app = 0; app < kApps; ++app) {
      perApp[app].reserve(kFramesPerApp);
      const std::string sha = "benchapp" + std::to_string(app);
      for (std::uint64_t seq = 0; seq < kFramesPerApp; ++seq)
        perApp[app].push_back(
            core::ReportFrame{static_cast<std::uint32_t>(app), seq,
                              benchReport(sha, seq)}
                .encode());
    }
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> perApp;
};

const Corpus& corpus() {
  static const Corpus kCorpus;
  return kCorpus;
}

/// Stream the whole corpus into a fresh daemon from `clients` connections
/// (apps striped across clients); returns wall seconds until every frame
/// is acked and folded.
double streamCorpus(std::size_t clients) {
  spectord::DaemonConfig config;
  config.ingest.shards = 2;
  config.ingest.queueCapacity = 8192;
  spectord::SpectorDaemon daemon(
      config, [](const core::RunArtifacts&) {
        return std::vector<core::FlowRecord>{};
      });

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&daemon, c, clients] {
        spectord::IngestClient client(daemon.connect(),
                                      /*clientId=*/100 + c);
        std::uint64_t sent = 0;
        for (std::size_t app = c; app < kApps; app += clients)
          for (const auto& datagram : corpus().perApp[app]) {
            client.submitDatagram(datagram);
            ++sent;
          }
        client.waitAckedFrames(sent, std::chrono::milliseconds(60000));
        client.bye();
      });
    }
  }
  daemon.drain();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  daemon.shutdown();
  return seconds;
}

}  // namespace

int main() {
  const double total = static_cast<double>(kApps * kFramesPerApp);
  const std::size_t fleet =
      std::max<std::size_t>(2, std::thread::hardware_concurrency() / 2);

  const double oneSeconds = streamCorpus(1);
  const double fleetSeconds = streamCorpus(fleet);
  const double oneRate = total / oneSeconds;
  const double fleetRate = total / fleetSeconds;

  std::printf("=== spectord wire throughput: %zu apps x %llu datagrams ===\n",
              kApps, static_cast<unsigned long long>(kFramesPerApp));
  std::printf("1 client  : %8.3f s  (%10.0f frames/s)\n", oneSeconds, oneRate);
  std::printf("%zu clients: %8.3f s  (%10.0f frames/s)\n", fleet,
              fleetSeconds, fleetRate);

  if (std::FILE* json = std::fopen("BENCH_spectord.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"apps\": %zu,\n"
                 "  \"datagrams\": %.0f,\n"
                 "  \"fleet_clients\": %zu,\n"
                 "  \"one_client_seconds\": %.6f,\n"
                 "  \"one_client_frames_per_sec\": %.1f,\n"
                 "  \"fleet_seconds\": %.6f,\n"
                 "  \"frames_per_sec\": %.1f\n"
                 "}\n",
                 kApps, total, fleet, oneSeconds, oneRate, fleetSeconds,
                 fleetRate);
    std::fclose(json);
    std::printf("wrote BENCH_spectord.json\n");
  }
  return 0;
}
