// ISSUE 5 acceptance bench: the symbol-interned flow pipeline and the
// dictionary-compressed report wire format, measured against the legacy
// string pipeline and the self-contained v1/v2 framing.
//
// Two headline numbers, written to BENCH_wire.json:
//
//   - wire bytes per reported socket, v2 framing vs v3 dictionary framing,
//     over a run with realistic smali signatures (60-90 chars) and stack
//     depths (8-16): a supervisor re-sends the same handful of signatures
//     on every socket, so sending each distinct signature once per run and
//     u32 ids afterwards should cut steady-state datagrams by >= 3x;
//
//   - heap allocations per 10k attributed flows, a faithful replica of the
//     pre-interning string pipeline (per-call frame memos, one std::string
//     per flow field, string-keyed aggregation) vs the symbol pipeline
//     (cross-run frame cache, u32-symbol flow records, id-keyed
//     aggregation), counted with a global operator new hook: >= 5x fewer.
#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "core/report.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "util/rng.hpp"
#include "vtsim/categorizer.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process ticks it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace libspector;

// ---------------------------------------------------------------------------
// Part 1: wire bytes per socket, v2 vs v3.
// ---------------------------------------------------------------------------

/// Realistic smali type signatures in the 60-90 character band the paper's
/// SDK stacks occupy (ad/analytics/networking internals, obfuscated tails).
std::vector<std::string> signaturePool() {
  const char* const kClasses[] = {
      "Lcom/google/android/gms/ads/internal/request/service/b",
      "Lcom/flurry/android/monolithic/sdk/impl/network/ado",
      "Lcom/unity3d/ads/android/cache/download/worker/c",
      "Lcom/chartboost/sdk/impl/networking/request/aw",
      "Lcom/inmobi/commons/analytics/net/dispatcher/e",
      "Lcom/millennialmedia/android/bridge/transport/d",
      "Lcom/mopub/mobileads/internal/loader/task/f",
      "Lcom/facebook/ads/internal/server/handler/g",
  };
  const char* const kMethods[] = {
      "doInBackground([Ljava/lang/String;)Ljava/lang/Object;",
      "executeRequest(Ljava/lang/String;I)Ljava/lang/String;",
      "openConnection(Ljava/lang/String;)Ljava/net/Socket;",
      "a(Ljava/lang/String;Ljava/lang/Object;)V",
  };
  std::vector<std::string> pool;
  for (const char* cls : kClasses)
    for (const char* method : kMethods)
      pool.push_back(std::string(cls) + ";->" + method);
  return pool;
}

struct WireNumbers {
  std::size_t sockets = 0;
  std::size_t distinctSignatures = 0;
  std::uint64_t v2Bytes = 0;
  std::uint64_t v3Bytes = 0;
};

/// One run's worth of supervisor datagrams, encoded both ways.
WireNumbers measureWire(std::size_t sockets) {
  const auto pool = signaturePool();
  util::Rng rng(0x11b59ec705ULL);
  WireNumbers numbers;
  numbers.sockets = sockets;
  numbers.distinctSignatures = pool.size();

  core::DictFrameEncoder encoder(7);
  for (std::size_t seq = 0; seq < sockets; ++seq) {
    core::UdpReport report;
    report.apkSha256 =
        "2b8f3a6f0d9c41e7885f12aa34cc56de2b8f3a6f0d9c41e7885f12aa34cc56de";
    report.socketPair = {{net::Ipv4Addr(10, 0, 2, 15),
                          static_cast<std::uint16_t>(32768 + seq % 28000)},
                         {net::Ipv4Addr(198, 18, 0, 1), 443}};
    report.timestampMs = seq * 37;
    const std::size_t depth = rng.uniform(8, 16);
    const std::size_t base = rng.uniform(0, pool.size() - 1);
    for (std::size_t i = 0; i < depth; ++i)
      report.stackSignatures.push_back(pool[(base + i) % pool.size()]);

    // v2 is a wire alias of the v1 layout: identical bytes, version patched.
    auto legacy = core::ReportFrame{7, seq, report}.encode();
    legacy[4] = 2;
    numbers.v2Bytes += legacy.size();
    numbers.v3Bytes += encoder.encode(seq, report).size();
  }
  return numbers;
}

// ---------------------------------------------------------------------------
// Part 2: heap allocations per 10k attributed flows.
// ---------------------------------------------------------------------------

constexpr std::size_t kStudyApps = 60;

/// Pre-emulated study world: emulation runs once, the measured passes only
/// attribute and aggregate.
struct StudyWorld {
  StudyWorld() {
    store::StoreConfig storeConfig;
    storeConfig.appCount = kStudyApps;
    storeConfig.seed = 20200629;
    storeConfig.methodScale = 0.15;
    generator = std::make_unique<store::AppStoreGenerator>(storeConfig);
    categorizer = std::make_unique<vtsim::DomainCategorizer>(
        vtsim::defaultVendorPanel(), [this](const std::string& domain) {
          return generator->domainTruth(domain);
        });
    for (std::size_t i = 0; i < generator->appCount(); ++i) {
      const auto job = generator->makeJob(i);
      orch::EmulatorConfig config;
      config.monkey.events = 20000;
      config.monkey.throttleMs = 20;
      config.seed = 0x11b59ec701ULL + i;
      orch::EmulatorInstance emulator(generator->farm(), nullptr, config);
      runs.push_back(emulator.run(job.apk, job.program));
    }
  }

  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  std::unique_ptr<store::AppStoreGenerator> generator;
  std::unique_ptr<vtsim::DomainCategorizer> categorizer;
  std::vector<core::RunArtifacts> runs;
};

/// The seed's per-flow record: one heap string per field. Attribution used
/// to hand a vector of these to a string-keyed aggregator.
struct LegacyFlowRecord {
  std::string apkSha256;
  std::string appPackage;
  std::string appCategory;
  std::string originLibrary;
  std::string originSignature;
  std::string twoLevelLibrary;
  std::string libraryCategory;
  std::string domain;
  std::string domainCategory;
  std::uint64_t sentBytes = 0;
  std::uint64_t recvBytes = 0;
};

struct LegacyAgg {
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::string category;
};

/// Replica of the seed's per-run record stage: materialize one string per
/// flow field (exactly what the pre-interning FlowRecord held), then fold
/// into string-keyed study maps. The symbol pipeline replaced this stage,
/// so it is what the allocation headline isolates — attribution proper
/// (capture-index build, stack walks) is identical on both sides and is
/// benched separately in BENCH_attribution.json.
std::size_t legacyRecordAndFold(
    const StudyWorld& world,
    const std::vector<std::vector<core::FlowRecord>>& flowsPerRun) {
  std::map<std::string, LegacyAgg> libraries;
  std::map<std::string, LegacyAgg> twoLevel;
  std::map<std::string, LegacyAgg> domains;
  std::size_t flowCount = 0;
  for (std::size_t i = 0; i < world.runs.size(); ++i) {
    std::vector<LegacyFlowRecord> materialized;
    materialized.reserve(flowsPerRun[i].size());
    for (const auto& flow : flowsPerRun[i]) {
      LegacyFlowRecord legacy;
      legacy.apkSha256 = flow.apkSha256.str();
      legacy.appPackage = flow.appPackage.str();
      legacy.appCategory = flow.appCategory.str();
      legacy.originLibrary = flow.originLibrary.str();
      legacy.originSignature = flow.originSignature.str();
      legacy.twoLevelLibrary = flow.twoLevelLibrary.str();
      legacy.libraryCategory = flow.libraryCategory.str();
      legacy.domain = flow.domain.str();
      legacy.domainCategory = flow.domainCategory.str();
      legacy.sentBytes = flow.sentBytes;
      legacy.recvBytes = flow.recvBytes;
      materialized.push_back(std::move(legacy));
    }
    for (const auto& flow : materialized) {
      auto& lib = libraries[flow.originLibrary];
      lib.sent += flow.sentBytes;
      lib.recv += flow.recvBytes;
      lib.category = flow.libraryCategory;
      auto& two = twoLevel[flow.twoLevelLibrary];
      two.sent += flow.sentBytes;
      two.recv += flow.recvBytes;
      if (!flow.domain.empty()) {
        auto& dom = domains[flow.domain];
        dom.sent += flow.sentBytes;
        dom.recv += flow.recvBytes;
        dom.category = flow.domainCategory;
      }
    }
    flowCount += flowsPerRun[i].size();
  }
  return flowCount;
}

/// The record stage as it now stands: flow records stay u32 symbols, the
/// StudyAggregator folds them through its id-keyed translation cache.
std::size_t symbolRecordAndFold(
    const StudyWorld& world,
    const std::vector<std::vector<core::FlowRecord>>& flowsPerRun) {
  core::StudyAggregator study;
  std::size_t flowCount = 0;
  for (std::size_t i = 0; i < world.runs.size(); ++i) {
    study.addApp(world.runs[i], flowsPerRun[i]);
    flowCount += flowsPerRun[i].size();
  }
  return flowCount;
}

/// End-to-end context numbers: attribute + record + fold, the way the seed
/// ran (interning off, per-call string work) vs the way the pipeline runs
/// now. Dominated on both sides by attribution proper, so the ratio is
/// structurally smaller than the record-stage headline.
std::size_t legacyEndToEnd(const StudyWorld& world) {
  core::AttributorConfig config;
  config.internSymbols = false;
  const core::TrafficAttributor attributor(world.corpus, *world.categorizer,
                                           config);
  std::vector<std::vector<core::FlowRecord>> flowsPerRun;
  flowsPerRun.reserve(world.runs.size());
  for (const auto& run : world.runs) flowsPerRun.push_back(attributor.attribute(run));
  return legacyRecordAndFold(world, flowsPerRun);
}

std::size_t symbolEndToEnd(const StudyWorld& world) {
  const core::TrafficAttributor attributor(world.corpus, *world.categorizer);
  std::vector<std::vector<core::FlowRecord>> flowsPerRun;
  flowsPerRun.reserve(world.runs.size());
  for (const auto& run : world.runs) flowsPerRun.push_back(attributor.attribute(run));
  return symbolRecordAndFold(world, flowsPerRun);
}

std::uint64_t countAllocations(const std::function<std::size_t()>& fn,
                               std::size_t& flows) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  flows = fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

}  // namespace

int main() {
  // ---- wire format ---------------------------------------------------------
  const WireNumbers wire = measureWire(4000);
  const double v2PerSocket =
      static_cast<double>(wire.v2Bytes) / static_cast<double>(wire.sockets);
  const double v3PerSocket =
      static_cast<double>(wire.v3Bytes) / static_cast<double>(wire.sockets);
  const double wireReduction = v3PerSocket > 0 ? v2PerSocket / v3PerSocket : 0;
  std::printf("=== report wire format: %zu sockets, %zu distinct signatures ===\n",
              wire.sockets, wire.distinctSignatures);
  std::printf("v2 framing:  %10llu bytes  (%.1f bytes/socket)\n",
              static_cast<unsigned long long>(wire.v2Bytes), v2PerSocket);
  std::printf("v3 dictionary: %8llu bytes  (%.1f bytes/socket)\n",
              static_cast<unsigned long long>(wire.v3Bytes), v3PerSocket);
  std::printf("wire reduction: %.1fx\n\n", wireReduction);

  // ---- allocations ---------------------------------------------------------
  const StudyWorld world;
  // Attribute the study once with the live pipeline; the record-stage
  // comparison below replays the exact same flows through both folds. The
  // attributor stays alive so the symbol flow records remain valid.
  const core::TrafficAttributor attributor(world.corpus, *world.categorizer);
  std::vector<std::vector<core::FlowRecord>> flowsPerRun;
  flowsPerRun.reserve(world.runs.size());
  for (const auto& run : world.runs)
    flowsPerRun.push_back(attributor.attribute(run));

  // Warm both paths once: the symbol pool, the cross-run frame cache and
  // every lazy corpus/categorizer structure fill here, so the measured
  // passes compare steady-state per-flow cost, not first-touch setup.
  (void)legacyRecordAndFold(world, flowsPerRun);
  (void)symbolRecordAndFold(world, flowsPerRun);

  std::size_t legacyFlows = 0;
  std::size_t symbolFlows = 0;
  const std::uint64_t legacyAllocs = countAllocations(
      [&] { return legacyRecordAndFold(world, flowsPerRun); }, legacyFlows);
  const std::uint64_t symbolAllocs = countAllocations(
      [&] { return symbolRecordAndFold(world, flowsPerRun); }, symbolFlows);

  std::size_t e2eFlows = 0;
  const std::uint64_t legacyE2eAllocs =
      countAllocations([&] { return legacyEndToEnd(world); }, e2eFlows);
  const std::uint64_t symbolE2eAllocs =
      countAllocations([&] { return symbolEndToEnd(world); }, e2eFlows);

  const double legacyPer10k = legacyFlows > 0
                                  ? 10000.0 * static_cast<double>(legacyAllocs) /
                                        static_cast<double>(legacyFlows)
                                  : 0;
  const double symbolPer10k = symbolFlows > 0
                                  ? 10000.0 * static_cast<double>(symbolAllocs) /
                                        static_cast<double>(symbolFlows)
                                  : 0;
  const double allocReduction = symbolPer10k > 0 ? legacyPer10k / symbolPer10k : 0;
  const double e2eReduction =
      symbolE2eAllocs > 0 ? static_cast<double>(legacyE2eAllocs) /
                                static_cast<double>(symbolE2eAllocs)
                          : 0;

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);

  std::printf("=== record+fold allocations: %zu-app study, %zu flows ===\n",
              kStudyApps, symbolFlows);
  std::printf("legacy string records: %10llu allocations  (%.0f per 10k flows)\n",
              static_cast<unsigned long long>(legacyAllocs), legacyPer10k);
  std::printf("symbol records:        %10llu allocations  (%.0f per 10k flows)\n",
              static_cast<unsigned long long>(symbolAllocs), symbolPer10k);
  std::printf("allocation reduction: %.1fx\n", allocReduction);
  std::printf("end-to-end (attribute+record+fold): %llu -> %llu allocations (%.1fx)\n",
              static_cast<unsigned long long>(legacyE2eAllocs),
              static_cast<unsigned long long>(symbolE2eAllocs), e2eReduction);
  std::printf("peak RSS: %ld KB\n\n", usage.ru_maxrss);

  if (std::FILE* json = std::fopen("BENCH_wire.json", "w")) {
    std::fprintf(json,
                 "{\n"
                 "  \"sockets\": %zu,\n"
                 "  \"distinct_signatures\": %zu,\n"
                 "  \"v2_wire_bytes\": %llu,\n"
                 "  \"v3_wire_bytes\": %llu,\n"
                 "  \"v2_bytes_per_socket\": %.2f,\n"
                 "  \"v3_bytes_per_socket\": %.2f,\n"
                 "  \"wire_reduction\": %.3f,\n"
                 "  \"study_apps\": %zu,\n"
                 "  \"flows\": %zu,\n"
                 "  \"legacy_allocations\": %llu,\n"
                 "  \"symbol_allocations\": %llu,\n"
                 "  \"legacy_allocations_per_10k_flows\": %.1f,\n"
                 "  \"symbol_allocations_per_10k_flows\": %.1f,\n"
                 "  \"allocation_reduction\": %.3f,\n"
                 "  \"end_to_end_legacy_allocations\": %llu,\n"
                 "  \"end_to_end_symbol_allocations\": %llu,\n"
                 "  \"end_to_end_allocation_reduction\": %.3f,\n"
                 "  \"peak_rss_kb\": %ld\n"
                 "}\n",
                 wire.sockets, wire.distinctSignatures,
                 static_cast<unsigned long long>(wire.v2Bytes),
                 static_cast<unsigned long long>(wire.v3Bytes), v2PerSocket,
                 v3PerSocket, wireReduction, kStudyApps, symbolFlows,
                 static_cast<unsigned long long>(legacyAllocs),
                 static_cast<unsigned long long>(symbolAllocs), legacyPer10k,
                 symbolPer10k, allocReduction,
                 static_cast<unsigned long long>(legacyE2eAllocs),
                 static_cast<unsigned long long>(symbolE2eAllocs), e2eReduction,
                 usage.ru_maxrss);
    std::fclose(json);
    std::printf("wrote BENCH_wire.json\n");
  }
  return 0;
}
