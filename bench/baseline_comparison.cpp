// §IV-E / RQ2: context-aware attribution versus the network-only baseline
// of prior work (Xu et al., Maier et al., Tongaonkar et al.), which labels
// traffic by its destination (hostname / DNS category) alone.
//
// The baseline classifier assigns each flow the category implied by its
// destination domain; Libspector assigns the origin-library category. The
// bench reports how much traffic the baseline mislabels.
//
// Paper reference: a purely DNS-based approach misclassifies all CDN-bound
// traffic from known origin-libraries — 19.3% of the total — and ~29% of
// advertisement-library traffic lands on CDNs.
#include "common/study.hpp"

using namespace libspector;

namespace {

/// Map a library category to the domain category a perfect endpoint-based
/// classifier would need to see for the two views to agree.
const char* expectedDomainCategory(const std::string& libCategory) {
  if (libCategory == "Advertisement") return "advertisements";
  if (libCategory == "Mobile Analytics") return "analytics";
  if (libCategory == "Game Engine") return "games";
  if (libCategory == "Social Network") return "social_networks";
  if (libCategory == "Payment") return "business_and_finance";
  return nullptr;  // no meaningful 1-to-1 mapping exists
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::optionsFromArgs(argc, argv);
  bench::printHeader("§IV-E — DNS-only baseline vs context-aware attribution",
                     options);
  const auto result = bench::runStudy(options);
  const auto& heatmap = result.study.libraryDomainHeatmap();

  std::printf("%-20s %12s %12s %9s\n", "library category", "total",
              "agreeing", "agree%");
  std::uint64_t mappableTotal = 0;
  std::uint64_t mappableAgreeing = 0;
  for (const auto& [libCategory, row] : heatmap) {
    const char* expected = expectedDomainCategory(libCategory);
    if (expected == nullptr) continue;
    std::uint64_t total = 0;
    std::uint64_t agreeing = 0;
    for (const auto& [domainCategory, bytes] : row) {
      total += bytes;
      if (domainCategory == expected) agreeing += bytes;
    }
    mappableTotal += total;
    mappableAgreeing += agreeing;
    std::printf("%-20s %12s %12s %8.1f%%\n", libCategory.c_str(),
                bench::bytesStr(static_cast<double>(total)).c_str(),
                bench::bytesStr(static_cast<double>(agreeing)).c_str(),
                total ? 100.0 * static_cast<double>(agreeing) /
                            static_cast<double>(total)
                      : 0.0);
  }

  if (mappableTotal > 0) {
    const double misclassified =
        100.0 * static_cast<double>(mappableTotal - mappableAgreeing) /
        static_cast<double>(mappableTotal);
    std::printf("\nDNS-only baseline mislabels %.1f%% of category-mappable traffic\n",
                misclassified);
  }
  std::printf("known-library traffic on CDN domains (always mislabeled): %.1f%% (paper 19.3%%)\n",
              100.0 * result.study.knownLibraryCdnShare());
  std::printf("\nConclusion (RQ2): endpoint categories alone cannot attribute "
              "library traffic;\norigin context from the app runtime is required.\n");
  std::printf("\n[%.1fs]\n", result.wallSeconds);
  return 0;
}
