// spectord_fleet — drive a small emulator fleet against a live spectord
// collector daemon, exercising all three protocol surfaces:
//
//   1. ingest: every worker's report datagrams and run bundles cross the
//      framed wire protocol into the daemon (IngestClient is a drop-in
//      ingest::ReportSink for the dispatcher fleet);
//   2. dashboard: a subscriber watches the study land live — snapshot on
//      subscribe, one delta per folded run, mirror == daemon state;
//   3. admin: status, drain and graceful shutdown (flushing `.spab`
//      checkpoints to the collector's directory).
//
// Usage: spectord_fleet [apps] [workers]   (defaults: 12 apps, 3 workers)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/attribution.hpp"
#include "orch/dispatcher.hpp"
#include "orch/study.hpp"
#include "radar/corpus.hpp"
#include "spectord/client.hpp"
#include "spectord/daemon.hpp"
#include "store/generator.hpp"
#include "store/prefetch.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  orch::StudyConfig config;
  config.store.appCount = argc > 1 ? std::atoi(argv[1]) : 12;
  config.store.seed = 7;
  config.store.methodScale = 0.05;
  config.dispatcher.workers = argc > 2 ? std::atoi(argv[2]) : 3;
  config.dispatcher.emulator.monkey.events = 100;
  config.dispatcher.emulator.monkey.throttleMs = 50;

  const auto checkpointDir =
      std::filesystem::temp_directory_path() / "spectord_fleet_example";
  std::filesystem::remove_all(checkpointDir);

  // --- the collector daemon -------------------------------------------
  const store::AppStoreGenerator generator(config.store);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&generator](const std::string& domain) {
        return generator.domainTruth(domain);
      });
  core::TrafficAttributor attributor(corpus, categorizer, config.attribution);

  spectord::DaemonConfig daemonConfig;
  daemonConfig.ingest = config.ingest;
  daemonConfig.expectedRuns = generator.appCount();
  daemonConfig.checkpointDirectory = checkpointDir.string();
  spectord::SpectorDaemon daemon(
      daemonConfig, [&attributor](const core::RunArtifacts& artifacts) {
        return attributor.attribute(artifacts);
      });

  // --- dashboard surface: subscribe before any run lands ---------------
  spectord::DashboardClient dashboard(daemon.connect(), /*clientId=*/1);
  dashboard.subscribe(spectord::Topic::Totals);
  dashboard.subscribe(spectord::Topic::Progress);
  dashboard.waitForSnapshot(spectord::Topic::Totals,
                            std::chrono::milliseconds(5000));
  std::printf("dashboard: subscribed, %llu runs at snapshot\n",
              static_cast<unsigned long long>(
                  dashboard.mirror().totals.runsFolded));

  // --- ingest surface: the emulator fleet, reports over the wire -------
  spectord::IngestClient sink(daemon.connect(), /*clientId=*/2);
  {
    std::vector<std::size_t> indices(generator.appCount());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    store::JobPrefetcher prefetcher(generator, std::move(indices),
                                    config.prefetch);
    std::atomic<std::uint64_t> accepted{0};
    orch::Dispatcher dispatcher(generator.farm(), &sink, config.dispatcher);
    dispatcher.runConcurrent(
        [&]() -> std::optional<orch::Dispatcher::Job> {
          auto item = prefetcher.next();
          if (!item) return std::nullopt;
          return orch::Dispatcher::Job{std::move(item->job.apk),
                                       std::move(item->job.program),
                                       item->index,
                                       std::move(item->apkSha256)};
        },
        [&](std::size_t index, core::RunArtifacts&& artifacts) {
          if (sink.completeRun(index, artifacts).accepted)
            accepted.fetch_add(1, std::memory_order_relaxed);
        },
        [&](std::size_t index, const orch::Dispatcher::FailedJob&) {
          daemon.pipeline().skip(index);
        });
    std::printf("fleet: %llu runs uploaded and accepted, %llu report "
                "frames acked\n",
                static_cast<unsigned long long>(accepted.load()),
                static_cast<unsigned long long>(sink.ackedFrames()));
  }

  // --- watch the study land -------------------------------------------
  daemon.drain();
  dashboard.waitForRuns(generator.appCount(), std::chrono::milliseconds(5000));
  const spectord::DashboardMirror& mirror = dashboard.mirror();
  std::printf("dashboard: %llu/%llu runs, %llu flows, %llu attributed "
              "bytes, %llu deltas received\n",
              static_cast<unsigned long long>(mirror.runsFolded),
              static_cast<unsigned long long>(mirror.expectedRuns),
              static_cast<unsigned long long>(mirror.totals.flowCount),
              static_cast<unsigned long long>(mirror.totals.attributedBytes),
              static_cast<unsigned long long>(dashboard.deltasReceived()));
  std::vector<std::pair<std::string, std::uint64_t>> libraries(
      mirror.totals.bytesByLibrary.begin(),
      mirror.totals.bytesByLibrary.end());
  std::sort(libraries.begin(), libraries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < libraries.size() && i < 5; ++i)
    std::printf("  top library %zu: %-40s %llu bytes\n", i + 1,
                libraries[i].first.c_str(),
                static_cast<unsigned long long>(libraries[i].second));

  // --- admin surface ----------------------------------------------------
  spectord::AdminClient admin(daemon.connect(), /*clientId=*/3);
  std::printf("admin status: %s\n",
              admin.request(spectord::AdminOp::Status).info.c_str());
  admin.request(spectord::AdminOp::Drain);
  // The Shutdown ack comes back before the event loop winds down; give
  // the daemon a moment to flush checkpoints and close every channel.
  admin.request(spectord::AdminOp::Shutdown);
  for (int i = 0; i < 100 && daemon.running(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::printf("daemon running after shutdown: %s\n",
              daemon.running() ? "yes" : "no");

  std::filesystem::remove_all(checkpointDir);
  return 0;
}
