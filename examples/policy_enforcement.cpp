// §IV-E "Security": close the loop between measurement and enforcement.
//
// Phase 1 measures a small population with Libspector and picks the most
// data-hungry advertisement/tracker origin-libraries. Phase 2 re-runs the
// same apps with a BorderPatrol-style PolicyModule blacklisting them, and
// reports the traffic (and §IV-D dollar/battery) savings.
//
// Usage: policy_enforcement [apps]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/attribution.hpp"
#include "core/cost.hpp"
#include "core/monitor.hpp"
#include "monkey/monkey.hpp"
#include "hook/xposed.hpp"
#include "orch/emulator.hpp"
#include "policy/module.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "util/strings.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

namespace {

struct Measurement {
  std::uint64_t totalBytes = 0;
  std::uint64_t antBytes = 0;
  std::size_t sockets = 0;
  std::size_t blocked = 0;
  std::map<std::string, std::uint64_t> bytesByOrigin;
};

Measurement measure(const store::AppStoreGenerator& generator,
                    core::TrafficAttributor& attributor,
                    const policy::PolicyEngine* engine) {
  Measurement out;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);

    util::SimClock clock;
    util::Rng rng(1000 + i);
    net::NetworkStack stack(generator.farm(), clock, rng.fork(1));
    core::MethodMonitor monitor;
    rt::Interpreter runtime(job.program, stack, monitor.tracer(), clock,
                            rng.fork(2));

    std::vector<core::UdpReport> reports;
    stack.registerUdpSink(core::kDefaultCollectorEndpoint,
                          [&](const net::SockEndpoint&,
                              std::span<const std::uint8_t> payload) {
                            reports.push_back(core::decodeReportDatagram(payload));
                          });
    hook::XposedFramework xposed;
    if (engine != nullptr)
      xposed.installModule(std::make_shared<policy::PolicyModule>(*engine));
    xposed.installModule(std::make_shared<core::SocketSupervisor>());
    xposed.attachToApp(runtime, job.apk);

    runtime.start();
    monkey::MonkeyConfig monkeyConfig;
    monkeyConfig.events = 1000;
    monkey::exercise(runtime, clock, monkeyConfig);

    core::RunArtifacts artifacts;
    artifacts.apkSha256 = util::toHex(job.apk.sha256());
    artifacts.packageName = job.apk.packageName;
    artifacts.appCategory = job.apk.appCategory;
    artifacts.capture = std::move(stack.capture());
    artifacts.reports = std::move(reports);

    out.sockets += runtime.socketsCreated();
    out.blocked += runtime.connectsBlocked();
    for (const auto& flow : attributor.attribute(artifacts)) {
      const std::uint64_t bytes = flow.sentBytes + flow.recvBytes;
      out.totalBytes += bytes;
      if (flow.antOrigin) out.antBytes += bytes;
      out.bytesByOrigin[flow.originLibrary.str()] += bytes;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const store::AppStoreGenerator generator(storeConfig);

  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);

  std::printf("Phase 1: measuring %zu apps without any policy...\n",
              generator.appCount());
  const Measurement before = measure(generator, attributor, nullptr);
  std::printf("  %s transferred over %zu sockets; AnT-origin share %.1f%%\n",
              util::humanBytes(static_cast<double>(before.totalBytes)).c_str(),
              before.sockets,
              100.0 * static_cast<double>(before.antBytes) /
                  static_cast<double>(before.totalBytes));

  // Pick blacklist candidates from the measurement (the a-priori knowledge
  // BorderPatrol lacks and Libspector provides).
  std::vector<std::pair<std::string, std::uint64_t>> heaviest(
      before.bytesByOrigin.begin(), before.bytesByOrigin.end());
  std::sort(heaviest.begin(), heaviest.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  policy::PolicyEngine engine;
  std::printf("\nBlacklisting the heaviest AnT origin-libraries:\n");
  int added = 0;
  for (const auto& [origin, bytes] : heaviest) {
    if (!radar::antLibraries().matches(origin)) continue;
    std::printf("  %-44s %10s\n", origin.c_str(),
                util::humanBytes(static_cast<double>(bytes)).c_str());
    engine.blockLibraryPrefix(origin);
    if (++added == 10) break;
  }

  std::printf("\nPhase 2: re-running the same apps under enforcement...\n");
  const Measurement after = measure(generator, attributor, &engine);
  std::printf("  %s transferred; %zu connections vetoed pre-socket\n",
              util::humanBytes(static_cast<double>(after.totalBytes)).c_str(),
              after.blocked);

  const double savedBytes = static_cast<double>(before.totalBytes) -
                            static_cast<double>(after.totalBytes);
  std::printf("\n== Savings ==\n");
  std::printf("traffic:   %s (%.1f%% of the unpoliced total)\n",
              util::humanBytes(savedBytes).c_str(),
              100.0 * savedBytes / static_cast<double>(before.totalBytes));
  const core::CostModel cost(core::DataPlanModel{}, core::EnergyModel{}, 8.0);
  const auto estimate =
      cost.estimate(savedBytes / static_cast<double>(generator.appCount()));
  std::printf("user cost: $%.2f/hour and %.1f%% battery per device (§IV-D model)\n",
              estimate.usdPerHour, 100.0 * estimate.batteryFraction);
  return 0;
}
