// spectorctl — command-line front end for the Libspector pipeline.
//
//   spectorctl run --apps N [--seed S] [--workers W] --out DIR
//       Run a study; persist every app's artifact bundle (.spab), a world
//       manifest (domains.csv with the VT-categorizer ground truth), and
//       the figure CSVs into DIR.
//
//   spectorctl analyze --in DIR [--csv SUBDIR]
//       Re-run the offline pipeline over previously persisted artifacts —
//       measurement once, analysis many times, as with the paper's central
//       database of pcaps and trace files.
//
//   spectorctl inspect --in DIR --sha PREFIX
//       Dump one app's context reports and attributed flows.
//
//   spectorctl policy --apps N [--seed S] --block PREFIX [--block ...]
//       Enforcement dry-run: measure with the given library blacklist.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "core/export.hpp"
#include "hook/xposed.hpp"
#include "monkey/monkey.hpp"
#include "orch/collector.hpp"
#include "orch/database.hpp"
#include "orch/dispatcher.hpp"
#include "policy/module.hpp"
#include "radar/corpus.hpp"
#include "rt/tracer.hpp"
#include "store/generator.hpp"
#include "util/strings.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> blockPrefixes;
};

Args parseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (!key.starts_with("--")) continue;
    if (key == "--block") {
      args.blockPrefixes.emplace_back(argv[i + 1]);
    } else {
      args.options[key.substr(2)] = argv[i + 1];
    }
  }
  return args;
}

std::size_t optSize(const Args& args, const std::string& key, std::size_t fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::strtoul(it->second.c_str(), nullptr, 10);
}

std::string optStr(const Args& args, const std::string& key, std::string fallback = {}) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? std::move(fallback) : it->second;
}

void printStudySummary(const core::StudyAggregator& study) {
  const auto totals = study.totals();
  std::printf("apps %zu, flows %zu, transferred %s (recv %s / sent %s)\n",
              totals.appCount, totals.flowCount,
              util::humanBytes(static_cast<double>(totals.totalBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.recvBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.sentBytes)).c_str());
  std::printf("origin-libraries %zu, domains %zu\n", totals.originLibraryCount,
              totals.domainCount);
  for (const auto& [category, bytes] : study.transferByLibCategory()) {
    std::printf("  %-24s %6.2f%%\n", category.c_str(),
                totals.totalBytes
                    ? 100.0 * static_cast<double>(bytes) /
                          static_cast<double>(totals.totalBytes)
                    : 0.0);
  }
}

int cmdRun(const Args& args) {
  const std::string outDir = optStr(args, "out");
  if (outDir.empty()) {
    std::fprintf(stderr, "run: --out DIR is required\n");
    return 2;
  }
  store::StoreConfig config;
  config.appCount = optSize(args, "apps", 200);
  config.seed = optSize(args, "seed", 20200629);
  const store::AppStoreGenerator generator(config);

  orch::ResultDatabase db;
  orch::CollectionServer collector;
  orch::DispatcherConfig dispatcherConfig;
  dispatcherConfig.workers = optSize(args, "workers", 0);
  orch::Dispatcher dispatcher(generator.farm(), &collector, dispatcherConfig);
  std::size_t next = 0;
  dispatcher.run(
      [&]() -> std::optional<orch::Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return orch::Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](core::RunArtifacts&& artifacts) { db.store(std::move(artifacts)); });

  const std::size_t saved = db.saveToDirectory(outDir);

  // World manifest: the domain ground truth the VT-simulator needs when the
  // artifacts are analyzed later (the paper scrapes VirusTotal once and
  // caches verdicts per domain).
  std::ofstream manifest(std::filesystem::path(outDir) / "domains.csv");
  manifest << "domain,truth\n";
  for (const auto& domain : generator.farm().allDomains())
    manifest << core::csvField(domain) << ','
             << core::csvField(generator.domainTruth(domain)) << '\n';

  std::printf("saved %zu artifact bundles + domains.csv to %s\n", saved,
              outDir.c_str());
  return 0;
}

std::map<std::string, std::string> loadDomainManifest(const std::string& dir) {
  std::map<std::string, std::string> truth;
  std::ifstream in(std::filesystem::path(dir) / "domains.csv");
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const auto comma = line.rfind(',');
    if (comma == std::string::npos) continue;
    truth[line.substr(0, comma)] = line.substr(comma + 1);
  }
  return truth;
}

int cmdAnalyze(const Args& args) {
  const std::string inDir = optStr(args, "in");
  if (inDir.empty()) {
    std::fprintf(stderr, "analyze: --in DIR is required\n");
    return 2;
  }
  orch::ResultDatabase db;
  const auto load = db.loadFromDirectory(inDir);
  std::printf("loaded %zu artifact bundles from %s (%zu replaced)\n",
              load.loaded, inDir.c_str(), load.replaced);
  for (const auto& failure : load.failures)
    std::fprintf(stderr, "analyze: skipped corrupt bundle %s: %s\n",
                 failure.path.c_str(), failure.error.c_str());

  const auto truth = loadDomainManifest(inDir);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&truth](const std::string& domain) {
        const auto it = truth.find(domain);
        return it == truth.end() ? std::string("unknown") : it->second;
      });
  core::TrafficAttributor attributor(corpus, categorizer);
  core::StudyAggregator study;
  db.forEach([&](const core::RunArtifacts& artifacts) {
    study.addApp(artifacts, attributor.attribute(artifacts));
  });
  printStudySummary(study);

  const std::string csvDir = optStr(args, "csv");
  if (!csvDir.empty()) {
    const std::size_t files = core::exportStudyCsv(study, csvDir);
    std::printf("wrote %zu figure CSVs to %s\n", files, csvDir.c_str());
  }
  const std::string reportPath = optStr(args, "report");
  if (!reportPath.empty()) {
    std::ofstream report(reportPath, std::ios::trunc);
    core::writeStudyReport(study, report);
    std::printf("wrote study report to %s\n", reportPath.c_str());
  }
  return 0;
}

int cmdInspect(const Args& args) {
  const std::string inDir = optStr(args, "in");
  const std::string shaPrefix = optStr(args, "sha");
  if (inDir.empty() || shaPrefix.empty()) {
    std::fprintf(stderr, "inspect: --in DIR and --sha PREFIX are required\n");
    return 2;
  }
  orch::ResultDatabase db;
  const auto load = db.loadFromDirectory(inDir);
  for (const auto& failure : load.failures)
    std::fprintf(stderr, "inspect: skipped corrupt bundle %s: %s\n",
                 failure.path.c_str(), failure.error.c_str());
  std::optional<core::RunArtifacts> found;
  db.forEach([&](const core::RunArtifacts& artifacts) {
    if (!found && artifacts.apkSha256.starts_with(shaPrefix))
      found = artifacts;
  });
  if (!found) {
    std::fprintf(stderr, "inspect: no bundle matching sha prefix %s\n",
                 shaPrefix.c_str());
    return 1;
  }
  std::printf("%s (%s, %s): %zu packets, %zu reports, coverage %.2f%%\n",
              found->apkSha256.c_str(), found->packageName.c_str(),
              found->appCategory.c_str(), found->capture.size(),
              found->reports.size(), 100.0 * found->coverage.ratio());
  const auto truth = loadDomainManifest(inDir);
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(), [&truth](const std::string& domain) {
        const auto it = truth.find(domain);
        return it == truth.end() ? std::string("unknown") : it->second;
      });
  core::TrafficAttributor attributor(corpus, categorizer);
  for (const auto& flow : attributor.attribute(*found)) {
    std::printf("  %-44s %-16s %-26s %9s/%9s\n", flow.originLibrary.str().c_str(),
                flow.libraryCategory.str().c_str(),
                flow.domain.empty() ? "(unresolved)" : flow.domain.str().c_str(),
                util::humanBytes(static_cast<double>(flow.sentBytes)).c_str(),
                util::humanBytes(static_cast<double>(flow.recvBytes)).c_str());
  }
  return 0;
}

int cmdPolicy(const Args& args) {
  if (args.blockPrefixes.empty()) {
    std::fprintf(stderr, "policy: at least one --block PREFIX is required\n");
    return 2;
  }
  store::StoreConfig config;
  config.appCount = optSize(args, "apps", 100);
  config.seed = optSize(args, "seed", 20200629);
  const store::AppStoreGenerator generator(config);

  policy::PolicyEngine engine;
  for (const auto& prefix : args.blockPrefixes) engine.blockLibraryPrefix(prefix);

  std::size_t sockets = 0;
  std::size_t blocked = 0;
  std::map<std::string, std::size_t> blockedByRule;
  for (std::size_t i = 0; i < generator.appCount(); ++i) {
    const auto job = generator.makeJob(i);
    util::SimClock clock;
    util::Rng rng(config.seed + i);
    net::NetworkStack stack(generator.farm(), clock, rng.fork(1));
    rt::UniqueMethodTracer tracer;
    rt::Interpreter runtime(job.program, stack, tracer, clock, rng.fork(2));
    auto module = std::make_shared<policy::PolicyModule>(engine);
    hook::XposedFramework xposed;
    xposed.installModule(module);
    xposed.attachToApp(runtime, job.apk);
    runtime.start();
    monkey::MonkeyConfig monkeyConfig;
    monkeyConfig.events = 1000;
    monkey::exercise(runtime, clock, monkeyConfig);
    sockets += runtime.socketsCreated();
    blocked += runtime.connectsBlocked();
    for (const auto& entry : module->blockedLog()) ++blockedByRule[entry.rule];
  }
  std::printf("%zu connections allowed, %zu vetoed\n", sockets, blocked);
  for (const auto& [rule, count] : blockedByRule)
    std::printf("  %-40s %zu\n", rule.c_str(), count);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (args.command == "run") return cmdRun(args);
  if (args.command == "analyze") return cmdAnalyze(args);
  if (args.command == "inspect") return cmdInspect(args);
  if (args.command == "policy") return cmdPolicy(args);
  std::fprintf(stderr,
               "usage: spectorctl <run|analyze|inspect|policy> [options]\n"
               "  run     --apps N [--seed S] [--workers W] --out DIR\n"
               "  analyze --in DIR [--csv DIR] [--report FILE]\n"
               "  inspect --in DIR --sha PREFIX\n"
               "  policy  --apps N [--seed S] --block PREFIX [--block ...]\n");
  return args.command.empty() ? 2 : 1;
}
