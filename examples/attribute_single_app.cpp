// Deep-dive on a single app: install it in one emulator, exercise it, and
// walk through exactly what Libspector collects — the UDP context reports
// with their translated stack traces (Listing 1), the per-socket volume
// join against the capture, and the final origin-library attribution with
// Listing-2-style category votes.
//
// Usage: attribute_single_app [appIndex] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/attribution.hpp"
#include "orch/emulator.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "util/strings.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const std::size_t appIndex = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20200629;

  store::StoreConfig storeConfig;
  storeConfig.appCount = appIndex + 1;
  storeConfig.seed = seed;
  const store::AppStoreGenerator generator(storeConfig);
  const auto& plan = generator.plan(appIndex);
  auto job = generator.makeJob(appIndex);

  std::printf("app:        %s\n", plan.packageName.c_str());
  std::printf("category:   %s\n", plan.appCategory.c_str());
  std::printf("dex:        %zu methods in %zu dex file(s)\n",
              job.apk.totalMethodCount(), job.apk.dexFiles.size());
  std::printf("version:    %u (dexTimestamp %llu, vtScanDate %llu)\n",
              job.apk.versionCode,
              static_cast<unsigned long long>(job.apk.dexTimestamp),
              static_cast<unsigned long long>(job.apk.vtScanDate));

  orch::EmulatorConfig emulatorConfig;
  emulatorConfig.monkey.events = 1000;
  emulatorConfig.monkey.throttleMs = 500;
  emulatorConfig.seed = seed + appIndex;
  orch::EmulatorInstance emulator(generator.farm(), nullptr, emulatorConfig);
  const auto artifacts = emulator.run(job.apk, job.program);

  std::printf("\nrun:        %u monkey events over %.1f simulated minutes\n",
              artifacts.monkeyEventsInjected,
              static_cast<double>(artifacts.runDurationMs) / 60000.0);
  std::printf("capture:    %zu packets, %s on the wire\n",
              artifacts.capture.size(),
              util::humanBytes(static_cast<double>(artifacts.capture.totalWireBytes())).c_str());
  std::printf("coverage:   %.2f%% (%zu of %zu dex methods)\n",
              100.0 * artifacts.coverage.ratio(),
              artifacts.coverage.coveredMethods, artifacts.coverage.totalMethods);
  std::printf("reports:    %zu sockets observed by the Socket Supervisor\n",
              artifacts.reports.size());

  if (!artifacts.reports.empty()) {
    std::printf("\nFirst report's stack trace (innermost first, as in Listing 1):\n");
    const auto& report = artifacts.reports.front();
    for (std::size_t i = 0; i < report.stackSignatures.size(); ++i)
      std::printf("  %2zu  %s\n", i + 1, report.stackSignatures[i].c_str());
    std::printf("  socket pair: %s\n", report.socketPair.str().c_str());
  }

  // Offline attribution.
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);
  const auto flows = attributor.attribute(artifacts);

  std::printf("\nAttributed flows (%zu):\n", flows.size());
  std::printf("%-42s %-16s %-24s %10s %10s\n", "origin-library", "category",
              "domain", "sent", "recv");
  for (const auto& flow : flows) {
    std::printf("%-42s %-16s %-24s %10s %10s\n", flow.originLibrary.str().c_str(),
                flow.libraryCategory.str().c_str(),
                flow.domain.empty() ? "(unresolved)" : flow.domain.str().c_str(),
                util::humanBytes(static_cast<double>(flow.sentBytes)).c_str(),
                util::humanBytes(static_cast<double>(flow.recvBytes)).c_str());
  }

  // Listing-2-style vote explanation for the first non-built-in origin.
  for (const auto& flow : flows) {
    if (flow.builtinOrigin) continue;
    const auto prediction = corpus.predictCategory(flow.originLibrary);
    std::printf("\nCategory vote for %s (matched prefix '%s'):\n",
                flow.originLibrary.str().c_str(), prediction.matchedPrefix.c_str());
    for (const auto& [category, count] : prediction.votes)
      std::printf("  %-24s %d\n", category.c_str(), count);
    std::printf("  -> %s\n", prediction.category.c_str());
    break;
  }
  return 0;
}
