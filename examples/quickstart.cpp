// Quickstart: run a small Libspector study end-to-end.
//
//   1. Generate a synthetic app-store world (apps, libraries, endpoints).
//   2. Dispatch every app to emulator workers: install, hook, monkey-
//      exercise, capture traffic, collect UDP context reports.
//   3. Attribute every socket to its origin-library and destination domain.
//   4. Print the §IV-A headline numbers.
//
// Usage: quickstart [appCount] [workers]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/analysis.hpp"
#include "core/attribution.hpp"
#include "orch/collector.hpp"
#include "orch/dispatcher.hpp"
#include "radar/corpus.hpp"
#include "store/generator.hpp"
#include "util/strings.hpp"
#include "vtsim/categorizer.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;

  std::printf("Generating store world (%zu apps)...\n", storeConfig.appCount);
  store::AppStoreGenerator generator(storeConfig);
  std::printf("  %zu remote endpoints registered\n", generator.farm().endpointCount());

  // Offline-analysis machinery.
  const radar::LibraryCorpus corpus = radar::LibraryCorpus::builtin();
  vtsim::DomainCategorizer categorizer(
      vtsim::defaultVendorPanel(),
      [&generator](const std::string& domain) { return generator.domainTruth(domain); });
  core::TrafficAttributor attributor(corpus, categorizer);
  core::StudyAggregator study;
  std::mutex analysisMutex;

  // Dispatch.
  orch::CollectionServer collector;
  orch::DispatcherConfig dispatcherConfig;
  dispatcherConfig.workers = workers;
  orch::Dispatcher dispatcher(generator.farm(), &collector, dispatcherConfig);

  std::size_t next = 0;
  dispatcher.run(
      [&]() -> std::optional<orch::Dispatcher::Job> {
        if (next >= generator.appCount()) return std::nullopt;
        auto job = generator.makeJob(next++);
        return orch::Dispatcher::Job{std::move(job.apk), std::move(job.program)};
      },
      [&](core::RunArtifacts&& artifacts) {
        // Workers already hold the dispatcher's sink lock; the categorizer
        // cache still needs guarding against the attributor's writes.
        const std::scoped_lock lock(analysisMutex);
        const auto flows = attributor.attribute(artifacts);
        study.addApp(artifacts, flows);
      });

  // Headline numbers (§IV-A).
  const auto totals = study.totals();
  std::printf("\n=== Study totals ===\n");
  std::printf("apps analyzed:        %zu\n", totals.appCount);
  std::printf("total transferred:    %s (sent %s / received %s)\n",
              util::humanBytes(static_cast<double>(totals.totalBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.sentBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.recvBytes)).c_str());
  std::printf("flows (sockets):      %zu\n", totals.flowCount);
  std::printf("origin-libraries:     %zu\n", totals.originLibraryCount);
  std::printf("2-level libraries:    %zu\n", totals.twoLevelLibraryCount);
  std::printf("DNS domains:          %zu\n", totals.domainCount);

  std::printf("\n=== Transfer share by origin-library category ===\n");
  const auto byCategory = study.transferByLibCategory();
  for (const auto& [category, bytes] : byCategory) {
    std::printf("  %-24s %6.2f%%  (%s)\n", category.c_str(),
                100.0 * static_cast<double>(bytes) / static_cast<double>(totals.totalBytes),
                util::humanBytes(static_cast<double>(bytes)).c_str());
  }

  const auto ant = study.antStats();
  std::printf("\n=== AnT prevalence ===\n");
  std::printf("apps with traffic:    %zu\n", ant.appsWithTraffic);
  std::printf("AnT-only apps:        %zu (%.1f%%)\n", ant.antOnlyApps,
              100.0 * static_cast<double>(ant.antOnlyApps) / static_cast<double>(ant.appsWithTraffic));
  std::printf("apps with AnT:        %zu (%.1f%%)\n", ant.someAntApps,
              100.0 * static_cast<double>(ant.someAntApps) / static_cast<double>(ant.appsWithTraffic));
  std::printf("AnT mean flow ratio:  %.1f   common-library: %.1f\n",
              ant.antMeanFlowRatio, ant.clMeanFlowRatio);

  const auto coverage = study.coverageStats();
  std::printf("\n=== Method coverage ===\n");
  std::printf("mean coverage:        %.2f%%\n", 100.0 * coverage.mean);
  std::printf("mean methods/apk:     %.0f\n", coverage.meanMethodsPerApk);

  const auto ratios = study.flowRatios(core::StudyAggregator::Entity::App);
  const auto libRatios = study.flowRatios(core::StudyAggregator::Entity::Library);
  const auto dnsRatios = study.flowRatios(core::StudyAggregator::Entity::Domain);
  std::printf("\n=== Mean transfer flow ratios (recv/sent) ===\n");
  std::printf("apps: %.1f   libraries: %.1f   domains: %.1f\n", ratios.mean,
              libRatios.mean, dnsRatios.mean);
  if (!ratios.ratios.empty()) {
    const auto& r = ratios.ratios;
    std::printf("app ratio percentiles: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
                r[r.size() / 2], r[r.size() * 9 / 10], r[r.size() * 99 / 100],
                r.back());
  }

  std::printf("\nknown-library traffic landing on CDN domains: %.1f%%\n",
              100.0 * study.knownLibraryCdnShare());
  return 0;
}
