// The paper's full measurement campaign (§III–§IV), configurable up to the
// 25,000-app population. Prints every headline result in one pass:
// §IV-A totals and category shares, AnT prevalence, flow ratios, Fig. 9's
// correlation takeaway, §IV-C coverage, and the §IV-D cost table.
//
// Usage: large_scale_study [apps] [workers] [methodScale] [csvDir]
//   large_scale_study 25000 0 1.0          # full population, full-size dex
//   large_scale_study 2500 0 0.15 out/     # also export figure CSVs
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "core/cost.hpp"
#include "core/export.hpp"
#include "orch/study.hpp"
#include "store/generator.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  store::StoreConfig storeConfig;
  storeConfig.appCount = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2500;
  const std::size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  if (argc > 3) storeConfig.methodScale = std::strtod(argv[3], nullptr);
  const char* csvDir = argc > 4 ? argv[4] : nullptr;

  util::setLogLevel(util::LogLevel::Info);
  std::printf("Libspector large-scale study: %zu apps (method scale %.2f)\n",
              storeConfig.appCount, storeConfig.methodScale);

  const store::AppStoreGenerator generator(storeConfig);
  std::printf("world: %zu remote endpoints; repository holds %zu packages "
              "(%zu rejected by the §III-A x86 filter)\n\n",
              generator.farm().endpointCount(), generator.repository().size(),
              generator.repository().size() - generator.appCount());

  // runStudy attributes on the worker fleet and folds results in dispatch
  // order, so the numbers below are byte-identical at any worker count.
  orch::DispatcherConfig dispatcherConfig;
  dispatcherConfig.workers = workers;
  const orch::StudyOutput output = orch::runStudy(generator, dispatcherConfig);
  const core::StudyAggregator& study = output.study;

  const auto totals = study.totals();
  std::printf("== Totals (§IV-A) ==\n");
  std::printf("transferred %s (received %s / sent %s) over %zu flows\n",
              util::humanBytes(static_cast<double>(totals.totalBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.recvBytes)).c_str(),
              util::humanBytes(static_cast<double>(totals.sentBytes)).c_str(),
              totals.flowCount);
  std::printf("%zu origin-libraries, %zu 2-level libraries, %zu DNS domains\n\n",
              totals.originLibraryCount, totals.twoLevelLibraryCount,
              totals.domainCount);

  std::printf("== Transfer share by origin-library category (Fig. 2 legend) ==\n");
  for (const auto& [category, bytes] : study.transferByLibCategory())
    std::printf("  %-24s %6.2f%%\n", category.c_str(),
                100.0 * static_cast<double>(bytes) /
                    static_cast<double>(totals.totalBytes));

  std::printf("\n== Top origin-libraries (Fig. 3) ==\n");
  for (const auto& entry : study.topOriginLibraries(10))
    std::printf("  %-44s %10s\n", entry.name.c_str(),
                util::humanBytes(static_cast<double>(entry.bytes)).c_str());

  const auto ant = study.antStats();
  std::printf("\n== AnT prevalence (Fig. 6) ==\n");
  std::printf("  %.1f%% of apps AnT-only, %.1f%% with some AnT, AnT/CL "
              "aggressiveness %.2fx\n",
              100.0 * static_cast<double>(ant.antOnlyApps) /
                  static_cast<double>(ant.appsWithTraffic),
              100.0 * static_cast<double>(ant.someAntApps) /
                  static_cast<double>(ant.appsWithTraffic),
              ant.clMeanFlowRatio > 0 ? ant.antMeanFlowRatio / ant.clMeanFlowRatio
                                      : 0.0);

  const auto appRatios = study.flowRatios(core::StudyAggregator::Entity::App);
  const auto libRatios = study.flowRatios(core::StudyAggregator::Entity::Library);
  const auto dnsRatios = study.flowRatios(core::StudyAggregator::Entity::Domain);
  std::printf("\n== Flow ratios (Fig. 5): apps %.0fx, libraries %.0fx, domains %.0fx ==\n",
              appRatios.mean, libRatios.mean, dnsRatios.mean);

  std::printf("\n== Context vs endpoints (Fig. 9 / §IV-E) ==\n");
  std::printf("  known-library traffic landing on CDN domains: %.1f%%\n",
              100.0 * study.knownLibraryCdnShare());

  const auto coverage = study.coverageStats();
  std::printf("\n== Coverage (§IV-C): mean %.2f%%, %.0f methods/apk ==\n",
              100.0 * coverage.mean, coverage.meanMethodsPerApk);

  std::printf("\n== User cost (§IV-D) ==\n");
  const core::CostModel cost(core::DataPlanModel{}, core::EnergyModel{}, 8.0);
  for (const char* category :
       {"Advertisement", "Mobile Analytics", "Game Engine"}) {
    const auto estimate = cost.estimate(study.meanBytesPerRun(category));
    std::printf("  %-18s %8s/run -> $%.2f/hour, %.1f%% battery\n", category,
                util::humanBytes(estimate.bytesPerRun).c_str(),
                estimate.usdPerHour, 100.0 * estimate.batteryFraction);
  }
  if (csvDir != nullptr) {
    const std::size_t files = core::exportStudyCsv(study, csvDir);
    std::printf("\nwrote %zu figure CSVs to %s\n", files, csvDir);
  }
  return 0;
}
