// What-if explorer for the §IV-D cost model: how the monetary and energy
// cost of advertisement traffic changes with the data-plan price and the
// device battery, holding the paper's measured traffic volumes fixed.
//
// Usage: cost_report [adMBPerRun] [usdPerGB]
#include <cstdio>
#include <cstdlib>

#include <initializer_list>

#include "core/cost.hpp"

using namespace libspector;

int main(int argc, char** argv) {
  const double adMb = argc > 1 ? std::strtod(argv[1], nullptr) : 15.58;
  const double usdPerGb = argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;
  const double bytesPerRun = adMb * 1024 * 1024;

  std::printf("Advertisement traffic: %.2f MB per 8-minute session\n", adMb);

  core::DataPlanModel plan;
  plan.usdPerGB = usdPerGb;
  const core::EnergyModel energy;
  const core::CostModel model(plan, energy, 8.0);
  const auto estimate = model.estimate(bytesPerRun);

  std::printf("\n== Money ==\n");
  std::printf("plan price:        $%.2f/GB\n", plan.usdPerGB);
  std::printf("hourly ad cost:    $%.2f\n", estimate.usdPerHour);
  std::printf("per 30 daily min:  $%.2f/month\n", estimate.usdPerHour * 0.5 * 30);

  std::printf("\n== Energy (Vallina et al. ad-library model) ==\n");
  std::printf("battery:           %.2f Wh (%.0f mAh @ %.2f V)\n", energy.batteryWh,
              energy.batteryMah, energy.batteryVoltage());
  std::printf("ad radio power:    %.3f W above idle\n", energy.adActivePowerWatts());
  std::printf("ad throughput:     %.0f B/s while active\n",
              energy.adThroughputBytesPerSec());
  std::printf("energy per byte:   %.2e J/B\n", energy.joulesPerByte());
  std::printf("session energy:    %.0f J (%.2f Wh)\n", estimate.energyJoules,
              estimate.energyJoules / 3600.0);
  std::printf("battery impact:    %.1f%% of a full charge\n",
              100.0 * estimate.batteryFraction);

  std::printf("\n== Sensitivity: $/hour across plan prices ==\n");
  for (const double price : {3.0, 5.0, 10.0, 15.0, 20.0}) {
    core::DataPlanModel p;
    p.usdPerGB = price;
    std::printf("  $%5.2f/GB -> $%.2f/hour\n", price,
                p.usdPerHour(bytesPerRun, 8.0));
  }

  std::printf("\n(paper reference: $1.17/hour and 18.7%% battery for 15.58 MB ads per run)\n");
  return 0;
}
