file(REMOVE_RECURSE
  "libspector_orch.a"
)
