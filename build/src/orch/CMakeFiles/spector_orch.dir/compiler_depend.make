# Empty compiler generated dependencies file for spector_orch.
# This may be replaced when dependencies are built.
