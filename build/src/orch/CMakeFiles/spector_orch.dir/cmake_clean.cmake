file(REMOVE_RECURSE
  "CMakeFiles/spector_orch.dir/collector.cpp.o"
  "CMakeFiles/spector_orch.dir/collector.cpp.o.d"
  "CMakeFiles/spector_orch.dir/database.cpp.o"
  "CMakeFiles/spector_orch.dir/database.cpp.o.d"
  "CMakeFiles/spector_orch.dir/dispatcher.cpp.o"
  "CMakeFiles/spector_orch.dir/dispatcher.cpp.o.d"
  "CMakeFiles/spector_orch.dir/emulator.cpp.o"
  "CMakeFiles/spector_orch.dir/emulator.cpp.o.d"
  "CMakeFiles/spector_orch.dir/study.cpp.o"
  "CMakeFiles/spector_orch.dir/study.cpp.o.d"
  "libspector_orch.a"
  "libspector_orch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_orch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
