file(REMOVE_RECURSE
  "libspector_monkey.a"
)
