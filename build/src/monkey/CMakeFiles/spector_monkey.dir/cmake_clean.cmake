file(REMOVE_RECURSE
  "CMakeFiles/spector_monkey.dir/monkey.cpp.o"
  "CMakeFiles/spector_monkey.dir/monkey.cpp.o.d"
  "libspector_monkey.a"
  "libspector_monkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_monkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
