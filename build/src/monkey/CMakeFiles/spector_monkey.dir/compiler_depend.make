# Empty compiler generated dependencies file for spector_monkey.
# This may be replaced when dependencies are built.
