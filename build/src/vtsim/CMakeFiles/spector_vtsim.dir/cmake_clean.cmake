file(REMOVE_RECURSE
  "CMakeFiles/spector_vtsim.dir/categories.cpp.o"
  "CMakeFiles/spector_vtsim.dir/categories.cpp.o.d"
  "CMakeFiles/spector_vtsim.dir/categorizer.cpp.o"
  "CMakeFiles/spector_vtsim.dir/categorizer.cpp.o.d"
  "CMakeFiles/spector_vtsim.dir/client.cpp.o"
  "CMakeFiles/spector_vtsim.dir/client.cpp.o.d"
  "CMakeFiles/spector_vtsim.dir/vendor.cpp.o"
  "CMakeFiles/spector_vtsim.dir/vendor.cpp.o.d"
  "libspector_vtsim.a"
  "libspector_vtsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_vtsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
