# Empty dependencies file for spector_vtsim.
# This may be replaced when dependencies are built.
