
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vtsim/categories.cpp" "src/vtsim/CMakeFiles/spector_vtsim.dir/categories.cpp.o" "gcc" "src/vtsim/CMakeFiles/spector_vtsim.dir/categories.cpp.o.d"
  "/root/repo/src/vtsim/categorizer.cpp" "src/vtsim/CMakeFiles/spector_vtsim.dir/categorizer.cpp.o" "gcc" "src/vtsim/CMakeFiles/spector_vtsim.dir/categorizer.cpp.o.d"
  "/root/repo/src/vtsim/client.cpp" "src/vtsim/CMakeFiles/spector_vtsim.dir/client.cpp.o" "gcc" "src/vtsim/CMakeFiles/spector_vtsim.dir/client.cpp.o.d"
  "/root/repo/src/vtsim/vendor.cpp" "src/vtsim/CMakeFiles/spector_vtsim.dir/vendor.cpp.o" "gcc" "src/vtsim/CMakeFiles/spector_vtsim.dir/vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
