file(REMOVE_RECURSE
  "libspector_vtsim.a"
)
