
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radar/ant.cpp" "src/radar/CMakeFiles/spector_radar.dir/ant.cpp.o" "gcc" "src/radar/CMakeFiles/spector_radar.dir/ant.cpp.o.d"
  "/root/repo/src/radar/builtin_corpus.cpp" "src/radar/CMakeFiles/spector_radar.dir/builtin_corpus.cpp.o" "gcc" "src/radar/CMakeFiles/spector_radar.dir/builtin_corpus.cpp.o.d"
  "/root/repo/src/radar/corpus.cpp" "src/radar/CMakeFiles/spector_radar.dir/corpus.cpp.o" "gcc" "src/radar/CMakeFiles/spector_radar.dir/corpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
