file(REMOVE_RECURSE
  "CMakeFiles/spector_radar.dir/ant.cpp.o"
  "CMakeFiles/spector_radar.dir/ant.cpp.o.d"
  "CMakeFiles/spector_radar.dir/builtin_corpus.cpp.o"
  "CMakeFiles/spector_radar.dir/builtin_corpus.cpp.o.d"
  "CMakeFiles/spector_radar.dir/corpus.cpp.o"
  "CMakeFiles/spector_radar.dir/corpus.cpp.o.d"
  "libspector_radar.a"
  "libspector_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
