file(REMOVE_RECURSE
  "libspector_radar.a"
)
