# Empty dependencies file for spector_radar.
# This may be replaced when dependencies are built.
