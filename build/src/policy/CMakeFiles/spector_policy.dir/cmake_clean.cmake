file(REMOVE_RECURSE
  "CMakeFiles/spector_policy.dir/engine.cpp.o"
  "CMakeFiles/spector_policy.dir/engine.cpp.o.d"
  "CMakeFiles/spector_policy.dir/module.cpp.o"
  "CMakeFiles/spector_policy.dir/module.cpp.o.d"
  "libspector_policy.a"
  "libspector_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
