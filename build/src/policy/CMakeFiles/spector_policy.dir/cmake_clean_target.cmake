file(REMOVE_RECURSE
  "libspector_policy.a"
)
