# Empty dependencies file for spector_policy.
# This may be replaced when dependencies are built.
