# Empty compiler generated dependencies file for spector_dex.
# This may be replaced when dependencies are built.
