file(REMOVE_RECURSE
  "libspector_dex.a"
)
