file(REMOVE_RECURSE
  "CMakeFiles/spector_dex.dir/apk.cpp.o"
  "CMakeFiles/spector_dex.dir/apk.cpp.o.d"
  "CMakeFiles/spector_dex.dir/disassembler.cpp.o"
  "CMakeFiles/spector_dex.dir/disassembler.cpp.o.d"
  "CMakeFiles/spector_dex.dir/type_signature.cpp.o"
  "CMakeFiles/spector_dex.dir/type_signature.cpp.o.d"
  "libspector_dex.a"
  "libspector_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
