
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dex/apk.cpp" "src/dex/CMakeFiles/spector_dex.dir/apk.cpp.o" "gcc" "src/dex/CMakeFiles/spector_dex.dir/apk.cpp.o.d"
  "/root/repo/src/dex/disassembler.cpp" "src/dex/CMakeFiles/spector_dex.dir/disassembler.cpp.o" "gcc" "src/dex/CMakeFiles/spector_dex.dir/disassembler.cpp.o.d"
  "/root/repo/src/dex/type_signature.cpp" "src/dex/CMakeFiles/spector_dex.dir/type_signature.cpp.o" "gcc" "src/dex/CMakeFiles/spector_dex.dir/type_signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
