
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/spector_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/artifacts.cpp" "src/core/CMakeFiles/spector_core.dir/artifacts.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/artifacts.cpp.o.d"
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/spector_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/spector_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/spector_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/spector_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/export.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/spector_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/spector_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/report.cpp.o.d"
  "/root/repo/src/core/supervisor.cpp" "src/core/CMakeFiles/spector_core.dir/supervisor.cpp.o" "gcc" "src/core/CMakeFiles/spector_core.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/spector_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/hook/CMakeFiles/spector_hook.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/spector_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/vtsim/CMakeFiles/spector_vtsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
