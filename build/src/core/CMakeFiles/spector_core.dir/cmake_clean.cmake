file(REMOVE_RECURSE
  "CMakeFiles/spector_core.dir/analysis.cpp.o"
  "CMakeFiles/spector_core.dir/analysis.cpp.o.d"
  "CMakeFiles/spector_core.dir/artifacts.cpp.o"
  "CMakeFiles/spector_core.dir/artifacts.cpp.o.d"
  "CMakeFiles/spector_core.dir/attribution.cpp.o"
  "CMakeFiles/spector_core.dir/attribution.cpp.o.d"
  "CMakeFiles/spector_core.dir/baseline.cpp.o"
  "CMakeFiles/spector_core.dir/baseline.cpp.o.d"
  "CMakeFiles/spector_core.dir/cost.cpp.o"
  "CMakeFiles/spector_core.dir/cost.cpp.o.d"
  "CMakeFiles/spector_core.dir/export.cpp.o"
  "CMakeFiles/spector_core.dir/export.cpp.o.d"
  "CMakeFiles/spector_core.dir/monitor.cpp.o"
  "CMakeFiles/spector_core.dir/monitor.cpp.o.d"
  "CMakeFiles/spector_core.dir/report.cpp.o"
  "CMakeFiles/spector_core.dir/report.cpp.o.d"
  "CMakeFiles/spector_core.dir/supervisor.cpp.o"
  "CMakeFiles/spector_core.dir/supervisor.cpp.o.d"
  "libspector_core.a"
  "libspector_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
