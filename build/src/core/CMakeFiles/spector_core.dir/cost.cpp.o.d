src/core/CMakeFiles/spector_core.dir/cost.cpp.o: \
 /root/repo/src/core/cost.cpp /usr/include/stdc-predef.h \
 /root/repo/src/core/cost.hpp
