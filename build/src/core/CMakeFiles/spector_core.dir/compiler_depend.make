# Empty compiler generated dependencies file for spector_core.
# This may be replaced when dependencies are built.
