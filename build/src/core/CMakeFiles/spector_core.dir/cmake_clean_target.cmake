file(REMOVE_RECURSE
  "libspector_core.a"
)
