
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/catalog.cpp" "src/store/CMakeFiles/spector_store.dir/catalog.cpp.o" "gcc" "src/store/CMakeFiles/spector_store.dir/catalog.cpp.o.d"
  "/root/repo/src/store/generator.cpp" "src/store/CMakeFiles/spector_store.dir/generator.cpp.o" "gcc" "src/store/CMakeFiles/spector_store.dir/generator.cpp.o.d"
  "/root/repo/src/store/repository.cpp" "src/store/CMakeFiles/spector_store.dir/repository.cpp.o" "gcc" "src/store/CMakeFiles/spector_store.dir/repository.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/spector_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/spector_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/vtsim/CMakeFiles/spector_vtsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
