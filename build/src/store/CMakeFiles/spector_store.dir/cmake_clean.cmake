file(REMOVE_RECURSE
  "CMakeFiles/spector_store.dir/catalog.cpp.o"
  "CMakeFiles/spector_store.dir/catalog.cpp.o.d"
  "CMakeFiles/spector_store.dir/generator.cpp.o"
  "CMakeFiles/spector_store.dir/generator.cpp.o.d"
  "CMakeFiles/spector_store.dir/repository.cpp.o"
  "CMakeFiles/spector_store.dir/repository.cpp.o.d"
  "libspector_store.a"
  "libspector_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
