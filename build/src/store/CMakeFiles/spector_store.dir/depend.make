# Empty dependencies file for spector_store.
# This may be replaced when dependencies are built.
