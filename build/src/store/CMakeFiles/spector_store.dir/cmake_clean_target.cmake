file(REMOVE_RECURSE
  "libspector_store.a"
)
