
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hook/native.cpp" "src/hook/CMakeFiles/spector_hook.dir/native.cpp.o" "gcc" "src/hook/CMakeFiles/spector_hook.dir/native.cpp.o.d"
  "/root/repo/src/hook/xposed.cpp" "src/hook/CMakeFiles/spector_hook.dir/xposed.cpp.o" "gcc" "src/hook/CMakeFiles/spector_hook.dir/xposed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/spector_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
