file(REMOVE_RECURSE
  "libspector_hook.a"
)
