file(REMOVE_RECURSE
  "CMakeFiles/spector_hook.dir/native.cpp.o"
  "CMakeFiles/spector_hook.dir/native.cpp.o.d"
  "CMakeFiles/spector_hook.dir/xposed.cpp.o"
  "CMakeFiles/spector_hook.dir/xposed.cpp.o.d"
  "libspector_hook.a"
  "libspector_hook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_hook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
