# Empty compiler generated dependencies file for spector_hook.
# This may be replaced when dependencies are built.
