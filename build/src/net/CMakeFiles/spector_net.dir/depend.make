# Empty dependencies file for spector_net.
# This may be replaced when dependencies are built.
