file(REMOVE_RECURSE
  "libspector_net.a"
)
