file(REMOVE_RECURSE
  "CMakeFiles/spector_net.dir/capture.cpp.o"
  "CMakeFiles/spector_net.dir/capture.cpp.o.d"
  "CMakeFiles/spector_net.dir/dns.cpp.o"
  "CMakeFiles/spector_net.dir/dns.cpp.o.d"
  "CMakeFiles/spector_net.dir/ip.cpp.o"
  "CMakeFiles/spector_net.dir/ip.cpp.o.d"
  "CMakeFiles/spector_net.dir/server.cpp.o"
  "CMakeFiles/spector_net.dir/server.cpp.o.d"
  "CMakeFiles/spector_net.dir/stack.cpp.o"
  "CMakeFiles/spector_net.dir/stack.cpp.o.d"
  "libspector_net.a"
  "libspector_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
