
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/spector_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/spector_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/spector_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/spector_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/spector_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/spector_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/server.cpp" "src/net/CMakeFiles/spector_net.dir/server.cpp.o" "gcc" "src/net/CMakeFiles/spector_net.dir/server.cpp.o.d"
  "/root/repo/src/net/stack.cpp" "src/net/CMakeFiles/spector_net.dir/stack.cpp.o" "gcc" "src/net/CMakeFiles/spector_net.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
