# Empty compiler generated dependencies file for spector_rt.
# This may be replaced when dependencies are built.
