file(REMOVE_RECURSE
  "libspector_rt.a"
)
