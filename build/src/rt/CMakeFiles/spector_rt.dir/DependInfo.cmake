
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/framework.cpp" "src/rt/CMakeFiles/spector_rt.dir/framework.cpp.o" "gcc" "src/rt/CMakeFiles/spector_rt.dir/framework.cpp.o.d"
  "/root/repo/src/rt/interpreter.cpp" "src/rt/CMakeFiles/spector_rt.dir/interpreter.cpp.o" "gcc" "src/rt/CMakeFiles/spector_rt.dir/interpreter.cpp.o.d"
  "/root/repo/src/rt/tracer.cpp" "src/rt/CMakeFiles/spector_rt.dir/tracer.cpp.o" "gcc" "src/rt/CMakeFiles/spector_rt.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
