file(REMOVE_RECURSE
  "CMakeFiles/spector_rt.dir/framework.cpp.o"
  "CMakeFiles/spector_rt.dir/framework.cpp.o.d"
  "CMakeFiles/spector_rt.dir/interpreter.cpp.o"
  "CMakeFiles/spector_rt.dir/interpreter.cpp.o.d"
  "CMakeFiles/spector_rt.dir/tracer.cpp.o"
  "CMakeFiles/spector_rt.dir/tracer.cpp.o.d"
  "libspector_rt.a"
  "libspector_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
