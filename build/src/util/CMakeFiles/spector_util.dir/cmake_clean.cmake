file(REMOVE_RECURSE
  "CMakeFiles/spector_util.dir/bytes.cpp.o"
  "CMakeFiles/spector_util.dir/bytes.cpp.o.d"
  "CMakeFiles/spector_util.dir/log.cpp.o"
  "CMakeFiles/spector_util.dir/log.cpp.o.d"
  "CMakeFiles/spector_util.dir/rng.cpp.o"
  "CMakeFiles/spector_util.dir/rng.cpp.o.d"
  "CMakeFiles/spector_util.dir/sha256.cpp.o"
  "CMakeFiles/spector_util.dir/sha256.cpp.o.d"
  "CMakeFiles/spector_util.dir/stats.cpp.o"
  "CMakeFiles/spector_util.dir/stats.cpp.o.d"
  "CMakeFiles/spector_util.dir/strings.cpp.o"
  "CMakeFiles/spector_util.dir/strings.cpp.o.d"
  "libspector_util.a"
  "libspector_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
