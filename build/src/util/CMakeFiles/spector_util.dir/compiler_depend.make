# Empty compiler generated dependencies file for spector_util.
# This may be replaced when dependencies are built.
