file(REMOVE_RECURSE
  "libspector_util.a"
)
