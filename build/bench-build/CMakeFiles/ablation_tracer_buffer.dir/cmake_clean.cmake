file(REMOVE_RECURSE
  "../bench/ablation_tracer_buffer"
  "../bench/ablation_tracer_buffer.pdb"
  "CMakeFiles/ablation_tracer_buffer.dir/ablation_tracer_buffer.cpp.o"
  "CMakeFiles/ablation_tracer_buffer.dir/ablation_tracer_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracer_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
