# Empty compiler generated dependencies file for ablation_tracer_buffer.
# This may be replaced when dependencies are built.
