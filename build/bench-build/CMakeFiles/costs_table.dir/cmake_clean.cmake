file(REMOVE_RECURSE
  "../bench/costs_table"
  "../bench/costs_table.pdb"
  "CMakeFiles/costs_table.dir/costs_table.cpp.o"
  "CMakeFiles/costs_table.dir/costs_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costs_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
