# Empty dependencies file for costs_table.
# This may be replaced when dependencies are built.
