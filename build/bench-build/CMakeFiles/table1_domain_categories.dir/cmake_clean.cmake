file(REMOVE_RECURSE
  "../bench/table1_domain_categories"
  "../bench/table1_domain_categories.pdb"
  "CMakeFiles/table1_domain_categories.dir/table1_domain_categories.cpp.o"
  "CMakeFiles/table1_domain_categories.dir/table1_domain_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_domain_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
