# Empty compiler generated dependencies file for table1_domain_categories.
# This may be replaced when dependencies are built.
