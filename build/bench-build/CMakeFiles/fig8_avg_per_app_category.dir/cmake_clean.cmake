file(REMOVE_RECURSE
  "../bench/fig8_avg_per_app_category"
  "../bench/fig8_avg_per_app_category.pdb"
  "CMakeFiles/fig8_avg_per_app_category.dir/fig8_avg_per_app_category.cpp.o"
  "CMakeFiles/fig8_avg_per_app_category.dir/fig8_avg_per_app_category.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_avg_per_app_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
