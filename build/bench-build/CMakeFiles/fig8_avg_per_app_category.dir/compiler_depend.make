# Empty compiler generated dependencies file for fig8_avg_per_app_category.
# This may be replaced when dependencies are built.
