file(REMOVE_RECURSE
  "../bench/fig3_top_libraries"
  "../bench/fig3_top_libraries.pdb"
  "CMakeFiles/fig3_top_libraries.dir/fig3_top_libraries.cpp.o"
  "CMakeFiles/fig3_top_libraries.dir/fig3_top_libraries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_top_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
