# Empty compiler generated dependencies file for fig3_top_libraries.
# This may be replaced when dependencies are built.
