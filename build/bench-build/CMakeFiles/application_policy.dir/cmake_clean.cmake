file(REMOVE_RECURSE
  "../bench/application_policy"
  "../bench/application_policy.pdb"
  "CMakeFiles/application_policy.dir/application_policy.cpp.o"
  "CMakeFiles/application_policy.dir/application_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
