# Empty compiler generated dependencies file for application_policy.
# This may be replaced when dependencies are built.
