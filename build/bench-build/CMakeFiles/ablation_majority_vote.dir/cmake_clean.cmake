file(REMOVE_RECURSE
  "../bench/ablation_majority_vote"
  "../bench/ablation_majority_vote.pdb"
  "CMakeFiles/ablation_majority_vote.dir/ablation_majority_vote.cpp.o"
  "CMakeFiles/ablation_majority_vote.dir/ablation_majority_vote.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_majority_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
