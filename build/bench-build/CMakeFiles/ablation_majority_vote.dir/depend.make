# Empty dependencies file for ablation_majority_vote.
# This may be replaced when dependencies are built.
