file(REMOVE_RECURSE
  "../bench/perf_overhead"
  "../bench/perf_overhead.pdb"
  "CMakeFiles/perf_overhead.dir/perf_overhead.cpp.o"
  "CMakeFiles/perf_overhead.dir/perf_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
