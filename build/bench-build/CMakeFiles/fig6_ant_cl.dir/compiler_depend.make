# Empty compiler generated dependencies file for fig6_ant_cl.
# This may be replaced when dependencies are built.
