file(REMOVE_RECURSE
  "../bench/fig6_ant_cl"
  "../bench/fig6_ant_cl.pdb"
  "CMakeFiles/fig6_ant_cl.dir/fig6_ant_cl.cpp.o"
  "CMakeFiles/fig6_ant_cl.dir/fig6_ant_cl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ant_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
