# Empty compiler generated dependencies file for fig4_cdf_flows.
# This may be replaced when dependencies are built.
