file(REMOVE_RECURSE
  "../bench/fig4_cdf_flows"
  "../bench/fig4_cdf_flows.pdb"
  "CMakeFiles/fig4_cdf_flows.dir/fig4_cdf_flows.cpp.o"
  "CMakeFiles/fig4_cdf_flows.dir/fig4_cdf_flows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cdf_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
