# Empty compiler generated dependencies file for sweep_monkey_events.
# This may be replaced when dependencies are built.
