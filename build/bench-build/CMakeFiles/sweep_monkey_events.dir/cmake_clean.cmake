file(REMOVE_RECURSE
  "../bench/sweep_monkey_events"
  "../bench/sweep_monkey_events.pdb"
  "CMakeFiles/sweep_monkey_events.dir/sweep_monkey_events.cpp.o"
  "CMakeFiles/sweep_monkey_events.dir/sweep_monkey_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_monkey_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
