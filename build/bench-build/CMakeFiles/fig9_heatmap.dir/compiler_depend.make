# Empty compiler generated dependencies file for fig9_heatmap.
# This may be replaced when dependencies are built.
