file(REMOVE_RECURSE
  "../bench/fig9_heatmap"
  "../bench/fig9_heatmap.pdb"
  "CMakeFiles/fig9_heatmap.dir/fig9_heatmap.cpp.o"
  "CMakeFiles/fig9_heatmap.dir/fig9_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
