# Empty compiler generated dependencies file for baseline_ua_hostname.
# This may be replaced when dependencies are built.
