file(REMOVE_RECURSE
  "../bench/baseline_ua_hostname"
  "../bench/baseline_ua_hostname.pdb"
  "CMakeFiles/baseline_ua_hostname.dir/baseline_ua_hostname.cpp.o"
  "CMakeFiles/baseline_ua_hostname.dir/baseline_ua_hostname.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ua_hostname.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
