file(REMOVE_RECURSE
  "../bench/ablation_prefix_match"
  "../bench/ablation_prefix_match.pdb"
  "CMakeFiles/ablation_prefix_match.dir/ablation_prefix_match.cpp.o"
  "CMakeFiles/ablation_prefix_match.dir/ablation_prefix_match.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefix_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
