# Empty compiler generated dependencies file for ablation_prefix_match.
# This may be replaced when dependencies are built.
