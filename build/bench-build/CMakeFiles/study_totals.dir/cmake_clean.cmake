file(REMOVE_RECURSE
  "../bench/study_totals"
  "../bench/study_totals.pdb"
  "CMakeFiles/study_totals.dir/study_totals.cpp.o"
  "CMakeFiles/study_totals.dir/study_totals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
