# Empty compiler generated dependencies file for study_totals.
# This may be replaced when dependencies are built.
