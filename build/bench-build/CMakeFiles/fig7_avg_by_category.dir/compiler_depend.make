# Empty compiler generated dependencies file for fig7_avg_by_category.
# This may be replaced when dependencies are built.
