file(REMOVE_RECURSE
  "../bench/fig7_avg_by_category"
  "../bench/fig7_avg_by_category.pdb"
  "CMakeFiles/fig7_avg_by_category.dir/fig7_avg_by_category.cpp.o"
  "CMakeFiles/fig7_avg_by_category.dir/fig7_avg_by_category.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_avg_by_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
