# Empty dependencies file for fig2_category_transfer.
# This may be replaced when dependencies are built.
