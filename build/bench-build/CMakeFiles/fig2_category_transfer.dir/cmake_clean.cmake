file(REMOVE_RECURSE
  "../bench/fig2_category_transfer"
  "../bench/fig2_category_transfer.pdb"
  "CMakeFiles/fig2_category_transfer.dir/fig2_category_transfer.cpp.o"
  "CMakeFiles/fig2_category_transfer.dir/fig2_category_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_category_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
