# Empty dependencies file for fig5_flow_ratios.
# This may be replaced when dependencies are built.
