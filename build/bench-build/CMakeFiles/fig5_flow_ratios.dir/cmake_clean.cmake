file(REMOVE_RECURSE
  "../bench/fig5_flow_ratios"
  "../bench/fig5_flow_ratios.pdb"
  "CMakeFiles/fig5_flow_ratios.dir/fig5_flow_ratios.cpp.o"
  "CMakeFiles/fig5_flow_ratios.dir/fig5_flow_ratios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_flow_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
