file(REMOVE_RECURSE
  "CMakeFiles/spector_bench_common.dir/common/study.cpp.o"
  "CMakeFiles/spector_bench_common.dir/common/study.cpp.o.d"
  "libspector_bench_common.a"
  "libspector_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
