file(REMOVE_RECURSE
  "libspector_bench_common.a"
)
