# Empty dependencies file for spector_bench_common.
# This may be replaced when dependencies are built.
