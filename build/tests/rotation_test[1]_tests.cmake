add_test([=[RotationTest.FlowsFollowTheDomainAcrossAddresses]=]  /root/repo/build/tests/rotation_test [==[--gtest_filter=RotationTest.FlowsFollowTheDomainAcrossAddresses]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[RotationTest.FlowsFollowTheDomainAcrossAddresses]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  rotation_test_TESTS RotationTest.FlowsFollowTheDomainAcrossAddresses)
