file(REMOVE_RECURSE
  "CMakeFiles/dispatcher_test.dir/orch/dispatcher_test.cpp.o"
  "CMakeFiles/dispatcher_test.dir/orch/dispatcher_test.cpp.o.d"
  "dispatcher_test"
  "dispatcher_test.pdb"
  "dispatcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
