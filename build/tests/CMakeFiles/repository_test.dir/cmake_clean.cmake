file(REMOVE_RECURSE
  "CMakeFiles/repository_test.dir/store/repository_test.cpp.o"
  "CMakeFiles/repository_test.dir/store/repository_test.cpp.o.d"
  "repository_test"
  "repository_test.pdb"
  "repository_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
