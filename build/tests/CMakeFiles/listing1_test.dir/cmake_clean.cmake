file(REMOVE_RECURSE
  "CMakeFiles/listing1_test.dir/integration/listing1_test.cpp.o"
  "CMakeFiles/listing1_test.dir/integration/listing1_test.cpp.o.d"
  "listing1_test"
  "listing1_test.pdb"
  "listing1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
