# Empty compiler generated dependencies file for listing1_test.
# This may be replaced when dependencies are built.
