file(REMOVE_RECURSE
  "CMakeFiles/emulator_test.dir/orch/emulator_test.cpp.o"
  "CMakeFiles/emulator_test.dir/orch/emulator_test.cpp.o.d"
  "emulator_test"
  "emulator_test.pdb"
  "emulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
