# Empty dependencies file for type_signature_test.
# This may be replaced when dependencies are built.
