file(REMOVE_RECURSE
  "CMakeFiles/type_signature_test.dir/dex/type_signature_test.cpp.o"
  "CMakeFiles/type_signature_test.dir/dex/type_signature_test.cpp.o.d"
  "type_signature_test"
  "type_signature_test.pdb"
  "type_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
