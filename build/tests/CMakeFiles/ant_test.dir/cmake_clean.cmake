file(REMOVE_RECURSE
  "CMakeFiles/ant_test.dir/radar/ant_test.cpp.o"
  "CMakeFiles/ant_test.dir/radar/ant_test.cpp.o.d"
  "ant_test"
  "ant_test.pdb"
  "ant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
