file(REMOVE_RECURSE
  "CMakeFiles/apk_test.dir/dex/apk_test.cpp.o"
  "CMakeFiles/apk_test.dir/dex/apk_test.cpp.o.d"
  "apk_test"
  "apk_test.pdb"
  "apk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
