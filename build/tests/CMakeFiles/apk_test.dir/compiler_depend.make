# Empty compiler generated dependencies file for apk_test.
# This may be replaced when dependencies are built.
