# Empty compiler generated dependencies file for xposed_test.
# This may be replaced when dependencies are built.
