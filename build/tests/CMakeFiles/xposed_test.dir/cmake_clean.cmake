file(REMOVE_RECURSE
  "CMakeFiles/xposed_test.dir/hook/xposed_test.cpp.o"
  "CMakeFiles/xposed_test.dir/hook/xposed_test.cpp.o.d"
  "xposed_test"
  "xposed_test.pdb"
  "xposed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xposed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
