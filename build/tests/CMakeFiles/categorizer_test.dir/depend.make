# Empty dependencies file for categorizer_test.
# This may be replaced when dependencies are built.
