file(REMOVE_RECURSE
  "CMakeFiles/categorizer_test.dir/vtsim/categorizer_test.cpp.o"
  "CMakeFiles/categorizer_test.dir/vtsim/categorizer_test.cpp.o.d"
  "categorizer_test"
  "categorizer_test.pdb"
  "categorizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
