# Empty compiler generated dependencies file for disassembler_test.
# This may be replaced when dependencies are built.
