file(REMOVE_RECURSE
  "CMakeFiles/disassembler_test.dir/dex/disassembler_test.cpp.o"
  "CMakeFiles/disassembler_test.dir/dex/disassembler_test.cpp.o.d"
  "disassembler_test"
  "disassembler_test.pdb"
  "disassembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disassembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
