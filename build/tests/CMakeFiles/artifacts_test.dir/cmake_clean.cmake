file(REMOVE_RECURSE
  "CMakeFiles/artifacts_test.dir/core/artifacts_test.cpp.o"
  "CMakeFiles/artifacts_test.dir/core/artifacts_test.cpp.o.d"
  "artifacts_test"
  "artifacts_test.pdb"
  "artifacts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artifacts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
