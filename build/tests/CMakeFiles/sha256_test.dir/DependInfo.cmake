
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/sha256_test.cpp" "tests/CMakeFiles/sha256_test.dir/util/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/sha256_test.dir/util/sha256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orch/CMakeFiles/spector_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/monkey/CMakeFiles/spector_monkey.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/spector_store.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/spector_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spector_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hook/CMakeFiles/spector_hook.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/spector_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/spector_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/spector_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/vtsim/CMakeFiles/spector_vtsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spector_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
