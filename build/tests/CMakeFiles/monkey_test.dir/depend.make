# Empty dependencies file for monkey_test.
# This may be replaced when dependencies are built.
