# Empty dependencies file for large_scale_study.
# This may be replaced when dependencies are built.
