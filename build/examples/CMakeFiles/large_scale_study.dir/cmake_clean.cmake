file(REMOVE_RECURSE
  "CMakeFiles/large_scale_study.dir/large_scale_study.cpp.o"
  "CMakeFiles/large_scale_study.dir/large_scale_study.cpp.o.d"
  "large_scale_study"
  "large_scale_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_scale_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
