# Empty dependencies file for policy_enforcement.
# This may be replaced when dependencies are built.
