file(REMOVE_RECURSE
  "CMakeFiles/policy_enforcement.dir/policy_enforcement.cpp.o"
  "CMakeFiles/policy_enforcement.dir/policy_enforcement.cpp.o.d"
  "policy_enforcement"
  "policy_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
