file(REMOVE_RECURSE
  "CMakeFiles/spectorctl.dir/spectorctl.cpp.o"
  "CMakeFiles/spectorctl.dir/spectorctl.cpp.o.d"
  "spectorctl"
  "spectorctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectorctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
