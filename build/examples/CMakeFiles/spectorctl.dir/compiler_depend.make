# Empty compiler generated dependencies file for spectorctl.
# This may be replaced when dependencies are built.
