# Empty dependencies file for attribute_single_app.
# This may be replaced when dependencies are built.
