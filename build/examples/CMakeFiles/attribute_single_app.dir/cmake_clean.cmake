file(REMOVE_RECURSE
  "CMakeFiles/attribute_single_app.dir/attribute_single_app.cpp.o"
  "CMakeFiles/attribute_single_app.dir/attribute_single_app.cpp.o.d"
  "attribute_single_app"
  "attribute_single_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_single_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
