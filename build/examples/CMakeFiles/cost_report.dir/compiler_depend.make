# Empty compiler generated dependencies file for cost_report.
# This may be replaced when dependencies are built.
