file(REMOVE_RECURSE
  "CMakeFiles/cost_report.dir/cost_report.cpp.o"
  "CMakeFiles/cost_report.dir/cost_report.cpp.o.d"
  "cost_report"
  "cost_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
