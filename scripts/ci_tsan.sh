#!/usr/bin/env bash
# TSan CI lane: build the concurrent subsystems under ThreadSanitizer and
# run the tests that exercise them — the ingest tier (sharded router,
# pipeline, chaos channel, v3 dictionary path), the dispatcher fleet, the
# collection server, the job-prefetch generator pool, the
# lock-free-read symbol pool, the shared compiled attribution
# program + columnar fold that concurrent shard workers run through, and
# the spectord daemon (event loop vs. client threads vs. shard consumers,
# plus the multi-collector cluster driver and the resilient client tier —
# reconnect/resume under BreakerEndpoint kills runs client threads against
# breaker pump threads against the daemon loop), and the scenario
# conformance matrix (golden-pinned studies at 0/1/2/8 workers and 1/2/4
# collectors with the keep-alive/adversarial/background-sync flags on). A
# data race here corrupts studies silently, so this lane gates every
# change to the streaming path.
#
# Usage: scripts/ci_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLIBSPECTOR_SANITIZE=thread

# The concurrent-subsystem test binaries (kept explicit so the lane stays
# fast as the tree grows; extend when a new subsystem goes multi-threaded).
TARGETS=(
  ingest_router_test
  ingest_pipeline_test
  ingest_stress_test
  ingest_dict_test
  dispatcher_test
  collector_test
  study_test
  recovery_test
  database_test
  prefetch_test
  prefetch_determinism_test
  symbol_pool_test
  attribution_program_test
  flow_columns_test
  spectord_protocol_test
  spectord_daemon_test
  spectord_cluster_test
  spectord_fuzz_test
  spectord_resilient_test
  spectord_chaos_cluster_test
  scenario_matrix_test
)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TARGETS[@]}"

# halt_on_error: a single race fails the lane; second_deadlock_stack helps
# diagnose lock-order findings in the shard consumers.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)" \
  -R 'Ingest|Dispatcher|Collector|StudyRunner|Recovery|Database|Prefetch|Symbol|Interning|AttributionProgram|FlowColumns|Columnar|Spectord|Reconnector|ScenarioMatrix')

echo "TSan lane: OK"
