#!/usr/bin/env python3
"""Perf-floor gate over BENCH_attribution.json.

bench/attribution_throughput writes its headline comparison (seed-config
attribution + row fold vs compiled-program attribution + columnar fold)
to BENCH_attribution.json. This script fails when any gated speedup
regresses below the recorded floor, so an accidental slow-down on the
study hot path turns a green lane red instead of silently eroding the
ROADMAP target (>=20x end to end).

Usage: scripts/check_bench_floor.py [path/to/BENCH_attribution.json]
       (default: BENCH_attribution.json in the current directory)

Exit status: 0 when every gated metric meets its floor, 1 otherwise.
"""

import json
import sys

# Floors are deliberately below the measured numbers (26-33x on the CI
# box) to absorb machine noise, but at or above the ROADMAP's 20x target
# for the end-to-end figures so the acceptance bar itself is the gate.
FLOORS = {
    # Attribution only: per-query capture index + memos + compiled program.
    "speedup_indexed_serialized": 20.0,
    # End to end (attribution + study fold), the headline ROADMAP metric.
    "speedup_columnar_serialized": 20.0,
    "speedup_columnar_parallel": 20.0,
}


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_attribution.json"
    try:
        with open(path, encoding="utf-8") as fh:
            bench = json.load(fh)
    except OSError as err:
        print(f"check_bench_floor: cannot read {path}: {err}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as err:
        print(f"check_bench_floor: {path} is not valid JSON: {err}",
              file=sys.stderr)
        return 1

    failures = []
    for key, floor in sorted(FLOORS.items()):
        value = bench.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: missing from {path} (floor {floor:g}x)")
            continue
        status = "ok" if value >= floor else "REGRESSION"
        print(f"{key}: {value:.1f}x (floor {floor:g}x) {status}")
        if value < floor:
            failures.append(f"{key}: {value:.1f}x < floor {floor:g}x")

    if failures:
        print("check_bench_floor: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench_floor: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
