#!/usr/bin/env python3
"""Perf-floor gate over the BENCH_*.json headline files.

The bench binaries write their headline comparisons as machine-readable
JSON next to the cwd:

  bench/attribution_throughput -> BENCH_attribution.json
  bench/wire_and_memory        -> BENCH_wire.json
  bench/ingest_throughput      -> BENCH_ingest.json
  bench/spectord_throughput    -> BENCH_spectord.json
  bench/scenario_throughput    -> BENCH_scenarios.json

This script fails when any gated metric regresses below its recorded
floor, so an accidental slow-down on a hot path turns a green lane red
instead of silently eroding a ROADMAP target.

Ratio floors (speedups, reductions) sit below the measured numbers to
absorb machine noise but at or above the ROADMAP acceptance bars.
Absolute-rate floors are set far below a healthy run (about a quarter of
the 1-core CI box measurement) because wall-clock rates vary with the
machine; they exist to catch order-of-magnitude regressions such as an
accidental O(n^2) in the router or a stalled daemon event loop. The
N-shard/N-client scaling *ratios* are deliberately not gated: on a
1-core CI box the parallel variants cannot beat serial, so a ratio floor
would gate the machine, not the code.

Usage: scripts/check_bench_floor.py [BENCH_file.json ...]
       With no arguments, every known BENCH file found in the current
       directory is checked (at least one must exist). Explicitly named
       files must exist.

Exit status: 0 when every gated metric meets its floor, 1 otherwise.
"""

import json
import os
import sys

# path -> {key: (floor, unit)}; unit "x" = ratio, "/s" = absolute rate.
FLOORS = {
    "BENCH_attribution.json": {
        # Attribution only: per-query capture index + memos + compiled
        # program.
        "speedup_indexed_serialized": (20.0, "x"),
        # End to end (attribution + study fold), the headline ROADMAP
        # metric.
        "speedup_columnar_serialized": (20.0, "x"),
        "speedup_columnar_parallel": (20.0, "x"),
    },
    "BENCH_wire.json": {
        # v3 dictionary frames vs v2 self-contained frames, bytes per
        # reported socket (paper's report channel). Measured ~4x.
        "wire_reduction": (3.0, "x"),
        # Symbol-interned attribution vs the legacy string pipeline,
        # heap allocations per 10k flows. Measured >100x.
        "allocation_reduction": (5.0, "x"),
        "end_to_end_allocation_reduction": (5.0, "x"),
    },
    "BENCH_ingest.json": {
        # Sharded router, single shard, multi-producer: absolute floor
        # (not the shard_scaling ratio -- see module docstring).
        "one_shard_datagrams_per_sec": (50000.0, "/s"),
    },
    "BENCH_spectord.json": {
        # Framed datagrams through the daemon's duplex-channel protocol
        # and event loop, client fleet, single collector.
        "frames_per_sec": (20000.0, "/s"),
    },
    "BENCH_scenarios.json": {
        # Scenario-diversity corpus (keep-alive reuse + adversarial
        # laundering + background sync). The fraction floors gate that
        # the scenarios actually fire -- a generator or wiring regression
        # that silently drops pooled requests, multi-library sockets, or
        # the RTT axis shows up as a fraction collapse long before it
        # shows up in wall clock. Measured: pooled 0.13, multi-library
        # 0.037, rtt 1.0.
        "pooled_flow_fraction": (0.02, "x"),
        "multi_library_socket_fraction": (0.005, "x"),
        "rtt_measured_fraction": (0.5, "x"),
        # Absolute rate: scenario emulation must stay the same order of
        # magnitude as the legacy corpus (measured ~73/s vs ~62/s on the
        # 1-core CI box).
        "scenario_apps_per_sec": (15.0, "/s"),
    },
}


def fmt(value, unit):
    if unit == "/s":
        return f"{value:,.0f}{unit}"
    return f"{value:g}{unit}"


def check_file(path, floors, failures):
    try:
        with open(path, encoding="utf-8") as fh:
            bench = json.load(fh)
    except OSError as err:
        print(f"check_bench_floor: cannot read {path}: {err}", file=sys.stderr)
        failures.append(f"{path}: unreadable")
        return
    except json.JSONDecodeError as err:
        print(f"check_bench_floor: {path} is not valid JSON: {err}",
              file=sys.stderr)
        failures.append(f"{path}: invalid JSON")
        return

    for key, (floor, unit) in sorted(floors.items()):
        value = bench.get(key)
        if not isinstance(value, (int, float)):
            failures.append(
                f"{path}: {key} missing (floor {fmt(floor, unit)})")
            continue
        status = "ok" if value >= floor else "REGRESSION"
        print(f"{path}: {key}: {fmt(value, unit)}"
              f" (floor {fmt(floor, unit)}) {status}")
        if value < floor:
            failures.append(
                f"{path}: {key}: {fmt(value, unit)}"
                f" < floor {fmt(floor, unit)}")


def main(argv):
    failures = []
    if len(argv) > 1:
        for path in argv[1:]:
            floors = FLOORS.get(os.path.basename(path))
            if floors is None:
                print(f"check_bench_floor: no floors defined for {path}",
                      file=sys.stderr)
                return 1
            check_file(path, floors, failures)
    else:
        present = [path for path in sorted(FLOORS) if os.path.exists(path)]
        if not present:
            print("check_bench_floor: no BENCH_*.json files found in the "
                  "current directory (run the bench binaries first)",
                  file=sys.stderr)
            return 1
        for path in present:
            check_file(path, FLOORS[path], failures)

    if failures:
        print("check_bench_floor: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench_floor: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
